#include "pipeline/pipeline.hpp"

#include "analysis/callgraph.hpp"
#include "interp/stats_listener.hpp"
#include "ir/verifier.hpp"
#include "layout/code_layout.hpp"
#include "layout/pettis_hansen.hpp"
#include "profile/edge_profile.hpp"
#include "support/logging.hpp"
#include "support/strutil.hpp"

namespace pathsched::pipeline {

double
PipelineResult::totalMs() const
{
    double total = 0;
    for (const auto &s : stages)
        total += s.ms;
    return total;
}

size_t
PipelineResult::budgetDegradations() const
{
    size_t n = 0;
    for (const auto &d : degraded) {
        if (d.kind == ErrorKind::BudgetExceeded ||
            d.kind == ErrorKind::DeadlineExceeded)
            ++n;
    }
    return n;
}

const char *
configName(SchedConfig config)
{
    switch (config) {
      case SchedConfig::BB: return "BB";
      case SchedConfig::M4: return "M4";
      case SchedConfig::M16: return "M16";
      case SchedConfig::P4: return "P4";
      case SchedConfig::P4e: return "P4e";
    }
    return "<bad>";
}

form::FormConfig
formConfigFor(SchedConfig config, const PipelineOptions &options)
{
    form::FormConfig fc;
    fc.completionThreshold = options.completionThreshold;
    fc.maxInstrs = options.maxInstrs;
    fc.enlarge = options.enlarge;
    fc.growUpward = options.growUpward;
    switch (config) {
      case SchedConfig::BB:
        break; // unused
      case SchedConfig::M4:
        fc.mode = form::ProfileMode::Edge;
        fc.unrollFactor = 4;
        break;
      case SchedConfig::M16:
        fc.mode = form::ProfileMode::Edge;
        fc.unrollFactor = 16;
        break;
      case SchedConfig::P4:
        fc.mode = form::ProfileMode::Path;
        fc.maxLoopHeads = 4;
        break;
      case SchedConfig::P4e:
        fc.mode = form::ProfileMode::Path;
        fc.maxLoopHeads = 4;
        fc.nonLoopStopsAtAnyHead = true;
        break;
    }
    return fc;
}

namespace {

/** How far the surviving procedures have progressed when a fallback
 *  runs — the BB fallback must catch the quarantined procedure up to
 *  exactly this point. */
enum class StageReached
{
    Form,      ///< transform stage: nothing else has run yet
    Compact,   ///< compaction has run
    Regalloc,  ///< register allocation has run
    Postsched, ///< postschedule + IR verification have run
};

} // namespace

PipelineResult
runPipeline(const ir::Program &program, const interp::ProgramInput &train,
            const interp::ProgramInput &test, SchedConfig config,
            const PipelineOptions &options)
{
    PipelineResult result;
    result.config = config;
    result.name = configName(config);
    {
        Status st = ir::verifyStatus(program, ir::VerifyMode::Strict);
        if (!st.ok()) {
            result.status = st;
            return result;
        }
    }

    // Observability: "timed" carries the "time.<config>." prefix for
    // stage stopwatches; counters register as <stage>.<config>.<name>.
    const obs::Observer base =
        options.observer != nullptr ? *options.observer : obs::Observer();
    const obs::Observer timed =
        base.withPrefix("time." + result.name + ".");
    const std::string cfg_dot = "." + result.name + ".";
    const bool want_interp_stats =
        options.interpStats && base.stats != nullptr;

    // Resource governance: null when no budget is set, so the entire
    // budget machinery vanishes and the run is bit-identical to an
    // unbudgeted build.
    const ResourceBudget &bud = options.budget;
    const bool budget_active = !bud.unlimited();
    const ResourceBudget *budp = budget_active ? &bud : nullptr;
    result.budgeted = budget_active;

    // --- 1. Training run on the original program: gather profiles and
    //        dynamic call counts for procedure placement. ---
    profile::EdgeProfiler edge_profile(program);
    profile::PathProfiler path_profile(program, options.pathParams);
    interp::RunResult train_run;
    {
        auto t = timed.time("train");
        interp::InterpOptions iopts;
        iopts.maxSteps = options.maxSteps;
        iopts.budgetSteps = bud.interpSteps;
        iopts.deadline = bud.deadline;
        iopts.collectCallCounts = true;
        interp::Interpreter interp(program, iopts);
        const bool need_edge = config == SchedConfig::M4 ||
                               config == SchedConfig::M16;
        const bool need_path = config == SchedConfig::P4 ||
                               config == SchedConfig::P4e;
        if (need_edge)
            interp.addListener(&edge_profile);
        if (need_path)
            interp.addListener(&path_profile);
        interp::StatsListener istats(base.stats,
                                     "interp" + cfg_dot + "train");
        if (want_interp_stats)
            interp.addListener(&istats);
        train_run = interp.run(train);
        if (want_interp_stats)
            istats.flush();
        if (need_path) {
            path_profile.finalize();
            result.numPaths = path_profile.numPaths();
        }
        t.stop();
        result.stages.push_back({"train", t.elapsedMs()});
    }
    if (train_run.stepLimit) {
        result.status = Status::error(
            ErrorKind::StepLimit,
            strfmt("training run exceeded %llu steps",
                   (unsigned long long)options.maxSteps));
        return result;
    }
    if (train_run.budgetStop) {
        // The training run executes the *original* program, so there is
        // no procedure to degrade: the budget is simply too small for
        // this workload.
        result.status = Status::error(
            ErrorKind::BudgetExceeded,
            strfmt("training run exceeded the %llu-step budget",
                   (unsigned long long)bud.interpSteps));
        return result;
    }
    if (train_run.deadlineStop) {
        result.status = Status::error(
            ErrorKind::DeadlineExceeded,
            "deadline expired during the training run");
        return result;
    }
    result.trainSteps = train_run.dynInstrs;
    base.addCounter("profile" + cfg_dot + "trainSteps",
                    train_run.dynInstrs);
    base.addCounter("profile" + cfg_dot + "paths", result.numPaths);

    // --- 1b. Profile admission: externally supplied profiles are
    //         loaded, checked and (in Repair mode) degraded per
    //         procedure before they may drive trace selection.  With
    //         no external text this whole block is inert and the run
    //         is bit-identical to a build without the admission layer.
    profile::EdgeProfiler ext_edge(program);
    profile::PathProfiler ext_path(program, options.pathParams);
    profile::EdgeProfiler proj_edge(program);
    const profile::EdgeProfiler *edge_for_form = &edge_profile;
    const profile::PathProfiler *path_for_form = &path_profile;
    profile::ProfileAudit &audit = result.profileAudit;
    {
        const bool need_edge = config == SchedConfig::M4 ||
                               config == SchedConfig::M16;
        const bool need_path = config == SchedConfig::P4 ||
                               config == SchedConfig::P4e;
        profile::ValidateOptions vo;
        vo.mode = options.profileCheck;
        vo.flowSlack = options.profileFlowSlack;
        profile::LoadOptions lo;
        lo.lenient =
            options.profileCheck == profile::AdmissionMode::Repair;
        // Whole-file rejection: Repair substitutes the internal
        // training profile; Strict and Off fail the run (true).
        auto admitFailed = [&](Status st) -> bool {
            if (options.profileCheck == profile::AdmissionMode::Repair) {
                warn("config %s: external profile rejected (%s); "
                     "falling back to the internal training profile",
                     result.name.c_str(), st.toString().c_str());
                audit.enabled = true;
                audit.fileRejected = true;
                audit.fileStatus = std::move(st);
                return false;
            }
            result.status = std::move(st);
            return true;
        };
        if (need_edge && !options.edgeProfileText.empty()) {
            profile::ProfileMeta meta;
            Status st = profile::loadEdgeProfile(options.edgeProfileText,
                                                 ext_edge, meta, lo);
            if (!st.ok()) {
                if (admitFailed(std::move(st)))
                    return result;
            } else {
                st = profile::auditEdgeProfile(program, ext_edge, meta,
                                               vo, audit);
                if (!st.ok()) { // strict mode only
                    result.status = std::move(st);
                    return result;
                }
                edge_for_form = &ext_edge;
            }
        }
        if (need_path && !options.pathProfileText.empty()) {
            profile::ProfileMeta meta;
            Status st = profile::loadPathProfile(options.pathProfileText,
                                                 ext_path, meta, lo);
            if (!st.ok()) {
                if (admitFailed(std::move(st)))
                    return result;
            } else {
                st = profile::auditPathProfile(program, ext_path, meta,
                                               vo, audit, &proj_edge);
                if (!st.ok()) { // strict mode only
                    result.status = std::move(st);
                    return result;
                }
                ext_path.finalize();
                path_for_form = &ext_path;
                result.numPaths = ext_path.numPaths();
            }
        }
        if (audit.enabled) {
            base.addCounter("profile" + cfg_dot + "audit.checked",
                            audit.checked);
            base.addCounter("profile" + cfg_dot + "audit.repaired",
                            audit.repaired);
            base.addCounter("profile" + cfg_dot + "audit.droppedPaths",
                            audit.droppedPaths);
            base.addCounter("profile" + cfg_dot + "audit.staleProcs",
                            audit.staleProcs);
            base.addCounter("robust" + cfg_dot + "profile.repaired",
                            audit.repaired);
            base.addCounter("robust" + cfg_dot + "profile.quarantined",
                            audit.quarantined);
            base.addCounter("robust" + cfg_dot + "profile.stale",
                            audit.staleProcs);
            if (audit.fileRejected)
                base.addCounter(
                    "robust" + cfg_dot + "profile.fileRejected", 1);
        }
    }

    // --- 2. Transform a copy of the program, one procedure at a time,
    //        with per-procedure quarantine (see the file comment). ---
    ir::Program prog = program;
    const size_t num_procs = prog.procs.size();
    std::vector<uint8_t> quarantined(num_procs, 0);

    // Stage-boundary fault injection; quarantined procedures are never
    // queried again, so the BB fallback cannot be re-failed.
    auto inject = [&](const char *stage, ir::ProcId p) -> Status {
        if (options.faults == nullptr || quarantined[p])
            return Status();
        if (auto kind = options.faults->fire(stage, p))
            return Status::error(
                *kind, strfmt("injected fault at %s", stage));
        return Status();
    };

    auto noteFailure = [&](ir::ProcId p, const char *stage,
                           const Status &st) {
        quarantined[p] = 1;
        warn("config %s: proc %s failed at %s (%s); degrading to BB",
             result.name.c_str(), program.procs[p].name.c_str(), stage,
             st.toString().c_str());
        result.degraded.push_back({p, program.procs[p].name, stage,
                                   st.kind(), st.message()});
    };

    // An expired run-wide deadline ends the run with a typed status at
    // the next per-procedure loop boundary (the stage that noticed the
    // expiry has already degraded its in-flight procedure by then).
    auto deadlineUp = [&](const char *stage) -> bool {
        if (!budget_active)
            return false;
        Status st = deadlineStatus(budp, stage);
        if (st.ok())
            return false;
        result.status = std::move(st);
        return true;
    };
    // Per-procedure budget view: quarantined procedures already run
    // their BB fallback body, which is always budget-free.
    auto budgetFor = [&](ir::ProcId p) -> const ResourceBudget * {
        return quarantined[p] ? nullptr : budp;
    };

    // Restore procedure p's original (basic-block) body and re-run the
    // stages its peers have already completed — injection-free.  A
    // failure here means the always-safe baseline itself is broken,
    // which is an internal bug: abort.
    auto rebuildAsBB = [&](ir::ProcId p, StageReached reached) {
        auto t = timed.time("fallback");
        prog.procs[p] = program.procs[p];
        prog.procs[p].syncSideTables();
        Status st = Status();
        sched::CompactOptions fb_opts;
        fb_opts.priority = options.schedPriority;
        sched::CompactStats fb_compact;
        regalloc::AllocStats fb_alloc;
        if (reached >= StageReached::Compact)
            st = sched::compactProcedure(prog, p, options.machine,
                                         fb_opts, fb_compact);
        if (st.ok() && reached >= StageReached::Regalloc &&
            options.registerAllocate)
            st = regalloc::allocateProcedure(
                prog, p, options.machine.numRegs, fb_alloc);
        if (st.ok() && reached >= StageReached::Postsched) {
            if (options.registerAllocate)
                sched::scheduleProcedure(prog, p, options.machine,
                                         options.schedPriority);
            st = ir::verifyProcStatus(prog, p,
                                      ir::VerifyMode::Superblock);
        }
        if (!st.ok())
            panic("BB fallback failed for proc %s: %s",
                  program.procs[p].name.c_str(), st.toString().c_str());
    };

    if (config != SchedConfig::BB) {
        // ".total" keeps the stage stopwatch a sibling of the
        // sub-stage distributions ("time.P4.form.select", ...).
        auto t = timed.time("form.total");
        form::FormConfig fc = formConfigFor(config, options);
        const obs::Observer form_obs = timed.withPrefix("form.");
        fc.observer = &form_obs;
        // Degradation cascade for procedures whose path profile lost
        // windows to admission but still projects consistently: form
        // them edge-driven (M4-style) from the projection.
        form::FormConfig fc_proj = fc;
        fc_proj.mode = form::ProfileMode::Edge;
        fc_proj.unrollFactor = 4;
        for (ir::ProcId p = 0; p < num_procs; ++p) {
            if (deadlineUp("form"))
                return result;
            const profile::ProcAudit *pa =
                audit.enabled ? audit.findProc(p) : nullptr;
            if (pa && pa->action == profile::ProcAction::Quarantined) {
                // No believable profile data for this procedure:
                // schedule it from the BB baseline.
                noteFailure(p, "profile",
                            Status::error(pa->kind, pa->message));
                rebuildAsBB(p, StageReached::Form);
                continue;
            }
            const bool use_proj =
                pa && pa->action == profile::ProcAction::ProjectedEdges;
            const char *stage = "form";
            fc.budget = budgetFor(p);
            fc_proj.budget = fc.budget;
            Status st = inject(stage, p);
            if (st.ok())
                st = use_proj
                         ? form::formProcedure(prog, p, &proj_edge,
                                               nullptr, fc_proj,
                                               result.form)
                         : form::formProcedure(prog, p, edge_for_form,
                                               path_for_form, fc,
                                               result.form);
            if (st.ok()) {
                stage = "materialize";
                st = inject(stage, p);
            }
            if (!st.ok()) {
                noteFailure(p, stage, st);
                rebuildAsBB(p, StageReached::Form);
            }
        }
        t.stop();
        result.stages.push_back({"form", t.elapsedMs()});
        base.addCounter("form" + cfg_dot + "tracesSelected",
                        result.form.tracesSelected);
        base.addCounter("form" + cfg_dot + "multiBlockTraces",
                        result.form.multiBlockTraces);
        base.addCounter("form" + cfg_dot + "superblocks",
                        result.form.superblocksFormed);
        base.addCounter("form" + cfg_dot + "enlarged",
                        result.form.enlargedSuperblocks);
        base.addCounter("form" + cfg_dot + "blocksDuplicated",
                        result.form.blocksDuplicated);
        base.addCounter("form" + cfg_dot + "unreachableRemoved",
                        result.form.unreachableRemoved);
    }

    // --- 3. Compact: local opt + renaming + preschedule. ---
    {
        auto t = timed.time("compact.total");
        sched::CompactOptions copts;
        copts.priority = options.schedPriority;
        const obs::Observer compact_obs = timed.withPrefix("compact.");
        copts.observer = &compact_obs;
        for (ir::ProcId p = 0; p < num_procs; ++p) {
            if (deadlineUp("compact"))
                return result;
            copts.budget = budgetFor(p);
            Status st = inject("compact", p);
            if (st.ok())
                st = sched::compactProcedure(prog, p, options.machine,
                                             copts, result.compact);
            if (!st.ok()) {
                noteFailure(p, "compact", st);
                rebuildAsBB(p, StageReached::Compact);
            }
        }
        t.stop();
        result.stages.push_back({"compact", t.elapsedMs()});
        base.addCounter("compact" + cfg_dot + "copiesPropagated",
                        result.compact.opt.copiesPropagated);
        base.addCounter("compact" + cfg_dot + "deadRemoved",
                        result.compact.opt.deadRemoved);
        base.addCounter("compact" + cfg_dot + "defsRenamed",
                        result.compact.rename.defsRenamed);
        base.addCounter("compact" + cfg_dot + "stubsCreated",
                        result.compact.rename.stubsCreated);
        base.addCounter("compact" + cfg_dot + "loadsSpeculated",
                        result.compact.sched.loadsSpeculated);
    }

    // --- 4. Register allocation and postschedule. ---
    if (options.registerAllocate) {
        {
            auto t = timed.time("regalloc");
            for (ir::ProcId p = 0; p < num_procs; ++p) {
                if (deadlineUp("regalloc")) {
                    t.stop();
                    return result;
                }
                Status st = inject("regalloc", p);
                if (st.ok())
                    st = regalloc::allocateProcedure(
                        prog, p, options.machine.numRegs, result.alloc,
                        budgetFor(p));
                if (!st.ok()) {
                    noteFailure(p, "regalloc", st);
                    rebuildAsBB(p, StageReached::Regalloc);
                }
            }
            t.stop();
            result.stages.push_back({"regalloc", t.elapsedMs()});
        }
        base.addCounter("alloc" + cfg_dot + "regsSpilled",
                        result.alloc.regsSpilled);
        base.setGauge("alloc" + cfg_dot + "maxPressure",
                      result.alloc.maxPressure);
        {
            auto t = timed.time("postsched");
            result.compact.sched = sched::ScheduleStats();
            for (ir::ProcId p = 0; p < num_procs; ++p)
                result.compact.sched += sched::scheduleProcedure(
                    prog, p, options.machine, options.schedPriority);
            t.stop();
            result.stages.push_back({"postsched", t.elapsedMs()});
        }
    }

    // Post-transform IR verification, per procedure so one broken
    // procedure quarantines instead of killing the run.
    for (ir::ProcId p = 0; p < num_procs; ++p) {
        if (deadlineUp("verify"))
            return result;
        Status st = inject("verify", p);
        if (st.ok())
            st = ir::verifyProcStatus(prog, p,
                                      ir::VerifyMode::Superblock);
        if (!st.ok()) {
            noteFailure(p, "verify", st);
            rebuildAsBB(p, StageReached::Postsched);
        }
    }

    // --- 5. Procedure placement and address assignment. ---
    // Re-runnable: the output-equivalence fallback lays the program out
    // again after degrading suspects.
    layout::CodeLayout code_layout;
    auto runLayout = [&](const char *stage_name) {
        auto t = timed.time(stage_name);
        if (options.pettisHansen) {
            analysis::CallGraph cg(prog);
            for (const auto &[edge, count] : train_run.callCounts)
                cg.addWeight(edge.first, edge.second, count);
            code_layout = layout::layoutProgram(
                prog, layout::pettisHansenOrder(cg), options.blockOrder);
        } else {
            code_layout =
                layout::layoutProgram(prog, {}, options.blockOrder);
        }
        t.stop();
        result.stages.push_back({stage_name, t.elapsedMs()});
        result.codeBytes = code_layout.totalBytes;
        base.setGauge("layout" + cfg_dot + "codeBytes",
                      double(result.codeBytes));
    };
    runLayout("layout");

    // --- 6. Measured test run of the transformed program (the I-cache
    //        simulation when options.useICache is set).  Re-runnable,
    //        with a fresh I-cache per attempt so a retry never sees the
    //        first attempt's cache contents. ---
    auto runTest = [&](const char *stage_name) {
        auto t = timed.time(stage_name);
        interp::InterpOptions iopts;
        iopts.maxSteps = options.maxSteps;
        iopts.budgetSteps = bud.interpSteps;
        iopts.deadline = bud.deadline;
        iopts.codeLayout = &code_layout;
        icache::ICache cache(options.cacheParams);
        if (options.useICache)
            iopts.cache = &cache;
        interp::Interpreter interp(prog, iopts);
        interp::StatsListener istats(base.stats,
                                     "interp" + cfg_dot + "test");
        if (want_interp_stats)
            interp.addListener(&istats);
        result.test = interp.run(test);
        if (want_interp_stats)
            istats.flush();
        t.stop();
        result.stages.push_back({stage_name, t.elapsedMs()});
    };
    runTest("test");

    // --- 7. Semantic check against the original program. ---
    interp::RunResult ref;
    {
        auto t = timed.time("verify");
        interp::InterpOptions iopts;
        iopts.maxSteps = options.maxSteps;
        iopts.budgetSteps = bud.interpSteps;
        iopts.deadline = bud.deadline;
        interp::Interpreter interp(program, iopts);
        ref = interp.run(test);
        t.stop();
        result.stages.push_back({"verify", t.elapsedMs()});
    }
    if (ref.stepLimit) {
        // The *original* program blew the step ceiling on the test
        // input: a user/configuration problem, not a miscompile.
        result.status = Status::error(
            ErrorKind::StepLimit,
            strfmt("reference test run exceeded %llu steps",
                   (unsigned long long)options.maxSteps));
        return result;
    }
    if (ref.budgetStop) {
        // The original program itself exceeds the step budget, so no
        // amount of degrading can bring the measured run under it.
        result.status = Status::error(
            ErrorKind::BudgetExceeded,
            strfmt("reference test run exceeded the %llu-step budget",
                   (unsigned long long)bud.interpSteps));
        return result;
    }
    if (ref.deadlineStop) {
        result.status = Status::error(
            ErrorKind::DeadlineExceeded,
            "deadline expired during the reference test run");
        return result;
    }

    // A budget-truncated measured run carries a stopProc attribution:
    // degrade that procedure to BB and re-measure.  Bounded — each
    // round quarantines one more procedure, and the reference run has
    // already shown the all-BB limit fits the budget, so attribution
    // running dry (or going in circles) is reported as a typed error,
    // never an abort.
    for (size_t round = 0; result.test.budgetStop ||
                           result.test.deadlineStop;
         ++round) {
        if (result.test.deadlineStop) {
            result.status = Status::error(
                ErrorKind::DeadlineExceeded,
                "deadline expired during the measured test run");
            return result;
        }
        const ir::ProcId sp = result.test.stopProc;
        if (sp == ir::kNoProc || sp >= num_procs || quarantined[sp] ||
            round >= num_procs) {
            result.status = Status::error(
                ErrorKind::BudgetExceeded,
                strfmt("test run exceeded the %llu-step budget even "
                       "after degrading %zu procedures",
                       (unsigned long long)bud.interpSteps,
                       result.degraded.size()));
            return result;
        }
        noteFailure(sp, "interp",
                    Status::error(
                        ErrorKind::BudgetExceeded,
                        strfmt("test run exceeded the %llu-step budget "
                               "in proc %s",
                               (unsigned long long)bud.interpSteps,
                               program.procs[sp].name.c_str())));
        rebuildAsBB(sp, StageReached::Postsched);
        runLayout("layout-retry");
        runTest("test-retry");
    }

    auto matches = [&]() {
        return !result.test.truncated() &&
               ref.output == result.test.output &&
               ref.returnValue == result.test.returnValue;
    };

    // Injected output-compare faults name their suspects (and the
    // error kind to record) directly.
    std::vector<std::pair<ir::ProcId, Status>> suspects;
    for (ir::ProcId p = 0; p < num_procs; ++p) {
        Status st = inject("output-compare", p);
        if (!st.ok())
            suspects.push_back({p, std::move(st)});
    }

    result.outputMatches = matches();
    if (!result.outputMatches || !suspects.empty()) {
        if (suspects.empty()) {
            // A real mismatch carries no attribution: suspect every
            // procedure that is not already running its BB body.
            const bool step_limited = result.test.stepLimit;
            const Status st = Status::error(
                step_limited ? ErrorKind::StepLimit
                             : ErrorKind::OutputMismatch,
                step_limited
                    ? strfmt("test run exceeded %llu steps",
                             (unsigned long long)options.maxSteps)
                    : strfmt("%zu vs %zu output values, "
                             "return %lld vs %lld",
                             ref.output.size(),
                             result.test.output.size(),
                             (long long)ref.returnValue,
                             (long long)result.test.returnValue));
            for (ir::ProcId p = 0; p < num_procs; ++p) {
                if (!quarantined[p])
                    suspects.push_back({p, st});
            }
        }
        ps_assert_msg(!suspects.empty(),
                      "config %s changed program behaviour with every "
                      "procedure already degraded to BB "
                      "(%zu vs %zu output values, return %lld vs %lld)",
                      result.name.c_str(), ref.output.size(),
                      result.test.output.size(),
                      (long long)ref.returnValue,
                      (long long)result.test.returnValue);
        for (const auto &[p, st] : suspects) {
            noteFailure(p, "output-compare", st);
            rebuildAsBB(p, StageReached::Postsched);
        }
        // Hyphenated names: "layout.retry" would nest under the
        // "layout" leaf in the stats registry, which forbids that.
        runLayout("layout-retry");
        runTest("test-retry");
        if (result.test.budgetStop || result.test.deadlineStop) {
            // The retry itself ran out of budget: a governance limit,
            // not a miscompile — report it typed instead of asserting.
            result.status = Status::error(
                result.test.deadlineStop ? ErrorKind::DeadlineExceeded
                                         : ErrorKind::BudgetExceeded,
                "resource budget exhausted during the output-compare "
                "retry run");
            return result;
        }
        result.outputMatches = matches();
        ps_assert_msg(result.outputMatches,
                      "config %s changed program behaviour even after "
                      "BB fallback "
                      "(%zu vs %zu output values, return %lld vs %lld)",
                      result.name.c_str(), ref.output.size(),
                      result.test.output.size(),
                      (long long)ref.returnValue,
                      (long long)result.test.returnValue);
    }

    // Test-run counters are recorded once, from the *final* (possibly
    // retried) test run.
    base.addCounter("test" + cfg_dot + "cycles", result.test.cycles);
    base.addCounter("test" + cfg_dot + "instrs", result.test.dynInstrs);
    base.addCounter("test" + cfg_dot + "branches",
                    result.test.dynBranches);
    if (options.useICache) {
        base.addCounter("test" + cfg_dot + "icacheAccesses",
                        result.test.icacheAccesses);
        base.addCounter("test" + cfg_dot + "icacheMisses",
                        result.test.icacheMisses);
        base.addCounter("test" + cfg_dot + "stallCycles",
                        result.test.stallCycles);
    }

    // --- 8. Robustness accounting. ---
    base.addCounter("robust" + cfg_dot + "degraded",
                    result.degraded.size());
    for (ErrorKind k : kAllErrorKinds) {
        uint64_t n = 0;
        for (const auto &d : result.degraded) {
            if (d.kind == k)
                ++n;
        }
        if (n > 0)
            base.addCounter(
                "robust" + cfg_dot + "errors." + errorKindName(k), n);
    }
    if (budget_active) {
        // Gated on governance being on, so unbudgeted runs register
        // exactly the same stats as before the budget layer existed.
        base.addCounter("robust" + cfg_dot + "budget.exhausted",
                        result.budgetDegradations());
        if (bud.deadline.active())
            base.setGauge("robust" + cfg_dot +
                              "budget.deadlineRemainingMs",
                          double(bud.deadline.remainingMs()));
    }

    if (options.keepTransformed)
        result.transformed =
            std::make_shared<ir::Program>(std::move(prog));

    return result;
}

} // namespace pathsched::pipeline
