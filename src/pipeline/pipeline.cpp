#include "pipeline/pipeline.hpp"

#include "analysis/callgraph.hpp"
#include "ir/verifier.hpp"
#include "layout/code_layout.hpp"
#include "layout/pettis_hansen.hpp"
#include "profile/edge_profile.hpp"
#include "support/logging.hpp"

namespace pathsched::pipeline {

const char *
configName(SchedConfig config)
{
    switch (config) {
      case SchedConfig::BB: return "BB";
      case SchedConfig::M4: return "M4";
      case SchedConfig::M16: return "M16";
      case SchedConfig::P4: return "P4";
      case SchedConfig::P4e: return "P4e";
    }
    return "<bad>";
}

form::FormConfig
formConfigFor(SchedConfig config, const PipelineOptions &options)
{
    form::FormConfig fc;
    fc.completionThreshold = options.completionThreshold;
    fc.maxInstrs = options.maxInstrs;
    fc.enlarge = options.enlarge;
    fc.growUpward = options.growUpward;
    switch (config) {
      case SchedConfig::BB:
        break; // unused
      case SchedConfig::M4:
        fc.mode = form::ProfileMode::Edge;
        fc.unrollFactor = 4;
        break;
      case SchedConfig::M16:
        fc.mode = form::ProfileMode::Edge;
        fc.unrollFactor = 16;
        break;
      case SchedConfig::P4:
        fc.mode = form::ProfileMode::Path;
        fc.maxLoopHeads = 4;
        break;
      case SchedConfig::P4e:
        fc.mode = form::ProfileMode::Path;
        fc.maxLoopHeads = 4;
        fc.nonLoopStopsAtAnyHead = true;
        break;
    }
    return fc;
}

PipelineResult
runPipeline(const ir::Program &program, const interp::ProgramInput &train,
            const interp::ProgramInput &test, SchedConfig config,
            const PipelineOptions &options)
{
    PipelineResult result;
    result.config = config;
    result.name = configName(config);
    ir::verifyOrDie(program, ir::VerifyMode::Strict);

    // --- 1. Training run on the original program: gather profiles and
    //        dynamic call counts for procedure placement. ---
    profile::EdgeProfiler edge_profile(program);
    profile::PathProfiler path_profile(program, options.pathParams);
    interp::RunResult train_run;
    {
        interp::InterpOptions iopts;
        iopts.maxSteps = options.maxSteps;
        iopts.collectCallCounts = true;
        interp::Interpreter interp(program, iopts);
        const bool need_edge = config == SchedConfig::M4 ||
                               config == SchedConfig::M16;
        const bool need_path = config == SchedConfig::P4 ||
                               config == SchedConfig::P4e;
        if (need_edge)
            interp.addListener(&edge_profile);
        if (need_path)
            interp.addListener(&path_profile);
        train_run = interp.run(train);
        if (need_path) {
            path_profile.finalize();
            result.numPaths = path_profile.numPaths();
        }
    }
    result.trainSteps = train_run.dynInstrs;

    // --- 2. Transform a copy of the program. ---
    ir::Program prog = program;
    if (config != SchedConfig::BB) {
        result.form = form::formProgram(prog, &edge_profile, &path_profile,
                                        formConfigFor(config, options));
    }

    // --- 3. Compact: local opt + renaming + preschedule. ---
    sched::CompactOptions copts;
    copts.priority = options.schedPriority;
    result.compact = sched::compactProgram(prog, options.machine, copts);

    // --- 4. Register allocation and postschedule. ---
    if (options.registerAllocate) {
        result.alloc =
            regalloc::allocateProgram(prog, options.machine.numRegs);
        result.compact.sched = sched::scheduleProgram(
            prog, options.machine, options.schedPriority);
    }
    ir::verifyOrDie(prog, ir::VerifyMode::Superblock);

    // --- 5. Procedure placement and address assignment. ---
    layout::CodeLayout code_layout;
    if (options.pettisHansen) {
        analysis::CallGraph cg(prog);
        for (const auto &[edge, count] : train_run.callCounts)
            cg.addWeight(edge.first, edge.second, count);
        code_layout = layout::layoutProgram(
            prog, layout::pettisHansenOrder(cg), options.blockOrder);
    } else {
        code_layout = layout::layoutProgram(prog, {}, options.blockOrder);
    }
    result.codeBytes = code_layout.totalBytes;

    // --- 6. Measured test run of the transformed program. ---
    icache::ICache cache(options.cacheParams);
    {
        interp::InterpOptions iopts;
        iopts.maxSteps = options.maxSteps;
        iopts.codeLayout = &code_layout;
        if (options.useICache)
            iopts.cache = &cache;
        interp::Interpreter interp(prog, iopts);
        result.test = interp.run(test);
    }

    // --- 7. Semantic check against the original program. ---
    {
        interp::InterpOptions iopts;
        iopts.maxSteps = options.maxSteps;
        interp::Interpreter interp(program, iopts);
        const interp::RunResult ref = interp.run(test);
        result.outputMatches =
            ref.output == result.test.output &&
            ref.returnValue == result.test.returnValue;
        ps_assert_msg(result.outputMatches,
                      "config %s changed program behaviour "
                      "(%zu vs %zu output values, return %lld vs %lld)",
                      result.name.c_str(), ref.output.size(),
                      result.test.output.size(),
                      (long long)ref.returnValue,
                      (long long)result.test.returnValue);
    }

    return result;
}

} // namespace pathsched::pipeline
