#include "pipeline/pipeline.hpp"

#include "analysis/callgraph.hpp"
#include "interp/stats_listener.hpp"
#include "ir/verifier.hpp"
#include "layout/code_layout.hpp"
#include "layout/pettis_hansen.hpp"
#include "profile/edge_profile.hpp"
#include "support/logging.hpp"

namespace pathsched::pipeline {

double
PipelineResult::totalMs() const
{
    double total = 0;
    for (const auto &s : stages)
        total += s.ms;
    return total;
}

const char *
configName(SchedConfig config)
{
    switch (config) {
      case SchedConfig::BB: return "BB";
      case SchedConfig::M4: return "M4";
      case SchedConfig::M16: return "M16";
      case SchedConfig::P4: return "P4";
      case SchedConfig::P4e: return "P4e";
    }
    return "<bad>";
}

form::FormConfig
formConfigFor(SchedConfig config, const PipelineOptions &options)
{
    form::FormConfig fc;
    fc.completionThreshold = options.completionThreshold;
    fc.maxInstrs = options.maxInstrs;
    fc.enlarge = options.enlarge;
    fc.growUpward = options.growUpward;
    switch (config) {
      case SchedConfig::BB:
        break; // unused
      case SchedConfig::M4:
        fc.mode = form::ProfileMode::Edge;
        fc.unrollFactor = 4;
        break;
      case SchedConfig::M16:
        fc.mode = form::ProfileMode::Edge;
        fc.unrollFactor = 16;
        break;
      case SchedConfig::P4:
        fc.mode = form::ProfileMode::Path;
        fc.maxLoopHeads = 4;
        break;
      case SchedConfig::P4e:
        fc.mode = form::ProfileMode::Path;
        fc.maxLoopHeads = 4;
        fc.nonLoopStopsAtAnyHead = true;
        break;
    }
    return fc;
}

PipelineResult
runPipeline(const ir::Program &program, const interp::ProgramInput &train,
            const interp::ProgramInput &test, SchedConfig config,
            const PipelineOptions &options)
{
    PipelineResult result;
    result.config = config;
    result.name = configName(config);
    ir::verifyOrDie(program, ir::VerifyMode::Strict);

    // Observability: "timed" carries the "time.<config>." prefix for
    // stage stopwatches; counters register as <stage>.<config>.<name>.
    const obs::Observer base =
        options.observer != nullptr ? *options.observer : obs::Observer();
    const obs::Observer timed =
        base.withPrefix("time." + result.name + ".");
    const std::string cfg_dot = "." + result.name + ".";
    const bool want_interp_stats =
        options.interpStats && base.stats != nullptr;

    // --- 1. Training run on the original program: gather profiles and
    //        dynamic call counts for procedure placement. ---
    profile::EdgeProfiler edge_profile(program);
    profile::PathProfiler path_profile(program, options.pathParams);
    interp::RunResult train_run;
    {
        auto t = timed.time("train");
        interp::InterpOptions iopts;
        iopts.maxSteps = options.maxSteps;
        iopts.collectCallCounts = true;
        interp::Interpreter interp(program, iopts);
        const bool need_edge = config == SchedConfig::M4 ||
                               config == SchedConfig::M16;
        const bool need_path = config == SchedConfig::P4 ||
                               config == SchedConfig::P4e;
        if (need_edge)
            interp.addListener(&edge_profile);
        if (need_path)
            interp.addListener(&path_profile);
        interp::StatsListener istats(base.stats,
                                     "interp" + cfg_dot + "train");
        if (want_interp_stats)
            interp.addListener(&istats);
        train_run = interp.run(train);
        if (want_interp_stats)
            istats.flush();
        if (need_path) {
            path_profile.finalize();
            result.numPaths = path_profile.numPaths();
        }
        t.stop();
        result.stages.push_back({"train", t.elapsedMs()});
    }
    result.trainSteps = train_run.dynInstrs;
    base.addCounter("profile" + cfg_dot + "trainSteps",
                    train_run.dynInstrs);
    base.addCounter("profile" + cfg_dot + "paths", result.numPaths);

    // --- 2. Transform a copy of the program. ---
    ir::Program prog = program;
    if (config != SchedConfig::BB) {
        // ".total" keeps the stage stopwatch a sibling of the
        // sub-stage distributions ("time.P4.form.select", ...).
        auto t = timed.time("form.total");
        form::FormConfig fc = formConfigFor(config, options);
        const obs::Observer form_obs = timed.withPrefix("form.");
        fc.observer = &form_obs;
        result.form = form::formProgram(prog, &edge_profile, &path_profile,
                                        fc);
        t.stop();
        result.stages.push_back({"form", t.elapsedMs()});
        base.addCounter("form" + cfg_dot + "tracesSelected",
                        result.form.tracesSelected);
        base.addCounter("form" + cfg_dot + "multiBlockTraces",
                        result.form.multiBlockTraces);
        base.addCounter("form" + cfg_dot + "superblocks",
                        result.form.superblocksFormed);
        base.addCounter("form" + cfg_dot + "enlarged",
                        result.form.enlargedSuperblocks);
        base.addCounter("form" + cfg_dot + "blocksDuplicated",
                        result.form.blocksDuplicated);
        base.addCounter("form" + cfg_dot + "unreachableRemoved",
                        result.form.unreachableRemoved);
    }

    // --- 3. Compact: local opt + renaming + preschedule. ---
    {
        auto t = timed.time("compact.total");
        sched::CompactOptions copts;
        copts.priority = options.schedPriority;
        const obs::Observer compact_obs = timed.withPrefix("compact.");
        copts.observer = &compact_obs;
        result.compact = sched::compactProgram(prog, options.machine,
                                               copts);
        t.stop();
        result.stages.push_back({"compact", t.elapsedMs()});
        base.addCounter("compact" + cfg_dot + "copiesPropagated",
                        result.compact.opt.copiesPropagated);
        base.addCounter("compact" + cfg_dot + "deadRemoved",
                        result.compact.opt.deadRemoved);
        base.addCounter("compact" + cfg_dot + "defsRenamed",
                        result.compact.rename.defsRenamed);
        base.addCounter("compact" + cfg_dot + "stubsCreated",
                        result.compact.rename.stubsCreated);
        base.addCounter("compact" + cfg_dot + "loadsSpeculated",
                        result.compact.sched.loadsSpeculated);
    }

    // --- 4. Register allocation and postschedule. ---
    if (options.registerAllocate) {
        {
            auto t = timed.time("regalloc");
            result.alloc =
                regalloc::allocateProgram(prog, options.machine.numRegs);
            t.stop();
            result.stages.push_back({"regalloc", t.elapsedMs()});
        }
        base.addCounter("alloc" + cfg_dot + "regsSpilled",
                        result.alloc.regsSpilled);
        base.setGauge("alloc" + cfg_dot + "maxPressure",
                      result.alloc.maxPressure);
        {
            auto t = timed.time("postsched");
            result.compact.sched = sched::scheduleProgram(
                prog, options.machine, options.schedPriority);
            t.stop();
            result.stages.push_back({"postsched", t.elapsedMs()});
        }
    }
    ir::verifyOrDie(prog, ir::VerifyMode::Superblock);

    // --- 5. Procedure placement and address assignment. ---
    layout::CodeLayout code_layout;
    {
        auto t = timed.time("layout");
        if (options.pettisHansen) {
            analysis::CallGraph cg(prog);
            for (const auto &[edge, count] : train_run.callCounts)
                cg.addWeight(edge.first, edge.second, count);
            code_layout = layout::layoutProgram(
                prog, layout::pettisHansenOrder(cg), options.blockOrder);
        } else {
            code_layout =
                layout::layoutProgram(prog, {}, options.blockOrder);
        }
        t.stop();
        result.stages.push_back({"layout", t.elapsedMs()});
    }
    result.codeBytes = code_layout.totalBytes;
    base.setGauge("layout" + cfg_dot + "codeBytes",
                  double(result.codeBytes));

    // --- 6. Measured test run of the transformed program (the I-cache
    //        simulation when options.useICache is set). ---
    icache::ICache cache(options.cacheParams);
    {
        auto t = timed.time("test");
        interp::InterpOptions iopts;
        iopts.maxSteps = options.maxSteps;
        iopts.codeLayout = &code_layout;
        if (options.useICache)
            iopts.cache = &cache;
        interp::Interpreter interp(prog, iopts);
        interp::StatsListener istats(base.stats,
                                     "interp" + cfg_dot + "test");
        if (want_interp_stats)
            interp.addListener(&istats);
        result.test = interp.run(test);
        if (want_interp_stats)
            istats.flush();
        t.stop();
        result.stages.push_back({"test", t.elapsedMs()});
    }
    base.addCounter("test" + cfg_dot + "cycles", result.test.cycles);
    base.addCounter("test" + cfg_dot + "instrs", result.test.dynInstrs);
    base.addCounter("test" + cfg_dot + "branches",
                    result.test.dynBranches);
    if (options.useICache) {
        base.addCounter("test" + cfg_dot + "icacheAccesses",
                        result.test.icacheAccesses);
        base.addCounter("test" + cfg_dot + "icacheMisses",
                        result.test.icacheMisses);
        base.addCounter("test" + cfg_dot + "stallCycles",
                        result.test.stallCycles);
    }

    // --- 7. Semantic check against the original program. ---
    {
        auto t = timed.time("verify");
        interp::InterpOptions iopts;
        iopts.maxSteps = options.maxSteps;
        interp::Interpreter interp(program, iopts);
        const interp::RunResult ref = interp.run(test);
        result.outputMatches =
            ref.output == result.test.output &&
            ref.returnValue == result.test.returnValue;
        t.stop();
        result.stages.push_back({"verify", t.elapsedMs()});
        ps_assert_msg(result.outputMatches,
                      "config %s changed program behaviour "
                      "(%zu vs %zu output values, return %lld vs %lld)",
                      result.name.c_str(), ref.output.size(),
                      result.test.output.size(),
                      (long long)ref.returnValue,
                      (long long)result.test.returnValue);
    }

    return result;
}

} // namespace pathsched::pipeline
