/**
 * @file
 * End-to-end experiment pipeline.
 *
 * Reproduces the paper's back-end flow (§2.3, §3): profile the original
 * program on the training input, form superblocks (edge- or
 * path-driven), optimize/rename/preschedule, allocate registers,
 * postschedule, place procedures (Pettis-Hansen), then measure the
 * transformed program on the test input — optionally through the
 * 32 KB direct-mapped I-cache.  Every pipeline run checks that the
 * transformed program's output matches the original's.
 *
 * The pipeline is fault-tolerant per procedure (docs/robustness.md):
 * when any transform stage fails for one procedure — or the
 * post-transform verification or output-equivalence check implicates
 * one — that procedure alone is degraded to the always-safe BB
 * configuration and the run completes, recording the degradation in
 * PipelineResult::degraded and the "robust.<config>.*" counters.  Only
 * a failure of the BB fallback itself aborts the run.
 */

#ifndef PATHSCHED_PIPELINE_PIPELINE_HPP
#define PATHSCHED_PIPELINE_PIPELINE_HPP

#include <memory>
#include <string>
#include <vector>

#include "form/form.hpp"
#include "icache/icache.hpp"
#include "layout/code_layout.hpp"
#include "interp/interpreter.hpp"
#include "ir/procedure.hpp"
#include "machine/machine.hpp"
#include "obs/timer.hpp"
#include "profile/path_profile.hpp"
#include "profile/validate.hpp"
#include "regalloc/linear_scan.hpp"
#include "sched/compact.hpp"
#include "support/budget.hpp"
#include "support/faultinject.hpp"
#include "support/status.hpp"

namespace pathsched::pipeline {

/** The paper's scheduling configurations (§4). */
enum class SchedConfig
{
    BB,  ///< basic-block scheduling (Table 1 baseline)
    M4,  ///< edge profile, mutual-most-likely, unroll factor 4
    M16, ///< edge profile, mutual-most-likely, unroll factor 16
    P4,  ///< path profile, <= 4 superblock-loop heads (§2.2)
    P4e, ///< P4 with non-loop superblocks capped at tail duplication
};

/** Short display name, e.g. "P4e". */
const char *configName(SchedConfig config);

/** Everything configurable about one pipeline run. */
struct PipelineOptions
{
    machine::MachineModel machine = machine::MachineModel::unitLatency();
    /** Attach the I-cache during the test run (Figs. 5/6). */
    bool useICache = false;
    icache::ICache::Params cacheParams;
    /** Run linear-scan allocation plus postschedule. */
    bool registerAllocate = true;
    /** Order procedures with Pettis-Hansen placement. */
    bool pettisHansen = true;
    /** Block address order within procedures (hot-first ablation). */
    layout::BlockOrder blockOrder = layout::BlockOrder::ById;
    /** Path-profiler depth etc. (paper: 15 branches). */
    profile::PathProfileParams pathParams;
    /** Enlargement gate: required completion frequency. */
    double completionThreshold = 0.50;
    /** Superblock instruction-count cap. */
    uint32_t maxInstrs = 256;
    /** Disable the enlargement step entirely (ablation). */
    bool enlarge = true;
    /** Also grow traces upward from seeds (footnote 2 ablation). */
    bool growUpward = false;
    /** List-scheduler candidate priority (ablation). */
    sched::SchedPriority schedPriority =
        sched::SchedPriority::CriticalPath;
    /** Interpreter step ceiling (the runaway guard; the default is the
     *  interpreter's own, so the two can never drift apart). */
    uint64_t maxSteps = interp::kDefaultMaxSteps;

    /**
     * Resource governance (docs/robustness.md): a run-wide deadline
     * plus per-procedure growth/op budgets and an interpreter step
     * budget.  A per-procedure budget exhaustion degrades exactly the
     * affected procedure to BB through the quarantine path; deadline
     * expiry degrades the in-flight procedure and then ends the run
     * with a typed DeadlineExceeded status.  Default-constructed =
     * no governance: the pipeline behaves bit-identically to an
     * unbudgeted run.
     */
    ResourceBudget budget;

    /** @name Observability (see docs/observability.md)
     *
     * With an observer attached, every stage registers its counters
     * ("<stage>.<config>.<counter>", e.g. "form.P4.superblocks") and
     * wall-time distributions ("time.<config>.<stage>") into
     * observer->stats, and emits trace events into observer->trace.
     * Both sinks are optional; a null observer costs nothing beyond
     * the per-stage clock reads that fill PipelineResult::stages.
     * @{
     */
    const obs::Observer *observer = nullptr;
    /** Attach interp::StatsListener to the train and test runs
     *  ("interp.<config>.{train,test}.*").  Slows the interpreter by a
     *  per-op callback, so keep off for timing-sensitive runs. */
    bool interpStats = false;
    /** @} */

    /** @name Profile admission (docs/robustness.md)
     *
     * When the matching text is non-empty, the training profile of
     * that kind is replaced by the externally supplied one — after it
     * passes admission control (profile/validate.hpp) at the level
     * `profileCheck` selects.  In Repair mode a rejected file falls
     * back to the internal training profile and rejected procedures
     * degrade individually (path -> projected edge profile ->
     * quarantine to BB), recorded in PipelineResult::profileAudit; in
     * Strict mode any finding fails the run with a typed status; Off
     * trusts the file after a plain parse.  With both texts empty the
     * pipeline is bit-identical to a build without this layer.
     * @{
     */
    std::string edgeProfileText; ///< external edge profile (M4/M16)
    std::string pathProfileText; ///< external path profile (P4/P4e)
    profile::AdmissionMode profileCheck = profile::AdmissionMode::Repair;
    /** Flow-check slack, see profile::ValidateOptions::flowSlack. */
    uint64_t profileFlowSlack = 1;
    /** @} */

    /** Keep the transformed program in PipelineResult::transformed
     *  (for tests and tools that inspect the scheduled IR). */
    bool keepTransformed = false;

    /**
     * Optional fault injector (not owned; see support/faultinject.hpp).
     * runPipeline consults it at every per-procedure stage boundary
     * ("form", "materialize", "compact", "regalloc", "verify",
     * "output-compare") and treats a hit exactly like a real failure of
     * that stage, degrading the procedure to BB.  Quarantined
     * procedures and the BB fallback itself are never re-injected, so
     * an armed fault cannot make the fallback fail.  Null disables
     * injection entirely.
     */
    FaultInjector *faults = nullptr;
};

/** One procedure degraded to the BB baseline during a pipeline run. */
struct Degradation
{
    ir::ProcId proc = 0;
    std::string procName;
    /** Stage boundary that failed: "profile" (admission quarantined
     *  the procedure before formation), "form", "materialize",
     *  "compact", "regalloc", "verify", "output-compare", or "interp"
     *  (the measured test run blew its step budget inside this
     *  procedure). */
    std::string stage;
    ErrorKind kind = ErrorKind::Injected;
    std::string message;
};

/** Measurements from one (program, config) pipeline run. */
struct PipelineResult
{
    SchedConfig config = SchedConfig::BB;
    std::string name;

    interp::RunResult test;   ///< the measured (transformed) test run
    form::FormStats form;
    sched::CompactStats compact;
    regalloc::AllocStats alloc;

    uint64_t codeBytes = 0;   ///< laid-out binary size
    size_t numPaths = 0;      ///< distinct paths in the train profile
    uint64_t trainSteps = 0;  ///< dynamic ops in the training run
    bool outputMatches = false; ///< transformed output == original output

    /**
     * Overall run status.  Non-OK means the run could not complete at
     * all (invalid input program, training/reference run over the step
     * ceiling) and the measurement fields are not meaningful.  A
     * *degraded* run — some procedures fell back to BB — still
     * completes with an OK status; check degradedRun().
     */
    Status status;
    /** Procedures degraded to BB, in the order they failed. */
    std::vector<Degradation> degraded;
    /** The run completed but at least one procedure fell back to BB. */
    bool degradedRun() const { return !degraded.empty(); }
    /** The run was governed by a non-empty ResourceBudget. */
    bool budgeted = false;
    /** Admission verdict on externally supplied profiles (enabled is
     *  false when no external profile was checked). */
    profile::ProfileAudit profileAudit;
    /** The transformed program, when keepTransformed was set and the
     *  run completed. */
    std::shared_ptr<const ir::Program> transformed;
    /** Degradations caused by budget or deadline exhaustion. */
    size_t budgetDegradations() const;

    /** Wall time of every pipeline stage, in execution order (always
     *  collected; independent of PipelineOptions::observer). */
    std::vector<obs::StageTiming> stages;

    /** Total wall time across stages, ms. */
    double totalMs() const;
};

/** Derive the FormConfig a SchedConfig stands for. */
form::FormConfig formConfigFor(SchedConfig config,
                               const PipelineOptions &options);

/**
 * Run the full pipeline: profile @p program on @p train, transform per
 * @p config, measure on @p test.  @p program itself is not modified.
 *
 * Recovery contract: an invalid input program or a training/reference
 * run over the step ceiling returns early with a non-OK
 * PipelineResult::status.  A per-procedure stage failure (or an
 * injected fault) degrades that procedure to BB and the run completes
 * — see PipelineResult::degraded.  An output mismatch that survives
 * degrading every suspect procedure to BB is an internal bug and
 * panics, as does a failure of the BB fallback itself.
 */
PipelineResult runPipeline(const ir::Program &program,
                           const interp::ProgramInput &train,
                           const interp::ProgramInput &test,
                           SchedConfig config,
                           const PipelineOptions &options);

} // namespace pathsched::pipeline

#endif // PATHSCHED_PIPELINE_PIPELINE_HPP
