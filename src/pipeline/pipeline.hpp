/**
 * @file
 * End-to-end experiment pipeline.
 *
 * Reproduces the paper's back-end flow (§2.3, §3): profile the original
 * program on the training input, form superblocks (edge- or
 * path-driven), optimize/rename/preschedule, allocate registers,
 * postschedule, place procedures (Pettis-Hansen), then measure the
 * transformed program on the test input — optionally through the
 * 32 KB direct-mapped I-cache.  Every pipeline run checks that the
 * transformed program's output matches the original's.
 *
 * The per-procedure transform stages run as a dependency DAG on a
 * work-stealing executor (pipeline/executor.hpp): one chain of tasks
 * per procedure, so independent procedures proceed in parallel while
 * the whole-program stages (training run, layout, measurement,
 * output comparison) stay serial.  An N-thread run is bit-identical
 * to a 1-thread run — see docs/architecture.md for the invariants
 * that guarantee it.  An optional StageCache (pipeline/cache.hpp)
 * memoizes finished transform chains across runs.
 *
 * The pipeline is fault-tolerant per procedure (docs/robustness.md):
 * when any transform stage fails for one procedure — or the
 * post-transform verification or output-equivalence check implicates
 * one — that procedure alone is degraded to the always-safe BB
 * configuration and the run completes, recording the degradation in
 * PipelineResult::degraded and the "robust.<config>.*" counters.  Only
 * a failure of the BB fallback itself aborts the run.
 */

#ifndef PATHSCHED_PIPELINE_PIPELINE_HPP
#define PATHSCHED_PIPELINE_PIPELINE_HPP

#include <memory>
#include <string>
#include <vector>

#include "form/form.hpp"
#include "icache/icache.hpp"
#include "layout/code_layout.hpp"
#include "interp/interpreter.hpp"
#include "ir/procedure.hpp"
#include "machine/machine.hpp"
#include "obs/timer.hpp"
#include "pipeline/executor.hpp"
#include "profile/path_profile.hpp"
#include "profile/validate.hpp"
#include "regalloc/linear_scan.hpp"
#include "sched/compact.hpp"
#include "sched/gcm.hpp"
#include "support/budget.hpp"
#include "support/faultinject.hpp"
#include "support/status.hpp"

namespace pathsched::pipeline {

class StageCache;

/**
 * The scheduling configurations: the paper's five (§4) plus the GCM
 * family.  An enumerator is only a stable identifier — everything a
 * configuration *means* (its name, profile needs, transform stage,
 * cache-key knobs) lives in its BackendDesc (pipeline/backend.hpp);
 * query the descriptor instead of comparing enumerators.
 */
enum class SchedConfig
{
    BB,  ///< basic-block scheduling (Table 1 baseline)
    M4,  ///< edge profile, mutual-most-likely, unroll factor 4
    M16, ///< edge profile, mutual-most-likely, unroll factor 16
    P4,  ///< path profile, <= 4 superblock-loop heads (§2.2)
    P4e, ///< P4 with non-loop superblocks capped at tail duplication
    G4,  ///< Click-style global code motion on the original CFG
    G4e, ///< G4 followed by P4-style path-driven enlargement
};

/** Short display name, e.g. "P4e". */
const char *configName(SchedConfig config);

/** @name PipelineOptions option groups
 *
 * Non-paper concerns are grouped by subsystem instead of accreting as
 * flat fields: profile admission (profileInput), governance and fault
 * injection (robustness), stat/trace sinks (observability), and the
 * task executor plus stage cache (executor).  The paper's own knobs —
 * machine model, formation and scheduling parameters — stay flat on
 * PipelineOptions, mirroring §3/§4 of the paper.
 * @{
 */

/** External profile admission (docs/robustness.md).
 *
 * When the matching text is non-empty, the training profile of that
 * kind is replaced by the externally supplied one — after it passes
 * admission control (profile/validate.hpp) at the level `check`
 * selects.  In Repair mode a rejected file falls back to the internal
 * training profile and rejected procedures degrade individually (path
 * -> projected edge profile -> quarantine to BB), recorded in
 * PipelineResult::profileAudit; in Strict mode any finding fails the
 * run with a typed status; Off trusts the file after a plain parse.
 * With both texts empty the pipeline is bit-identical to a build
 * without this layer. */
struct ProfileInput
{
    std::string edgeText; ///< external edge profile (M4/M16)
    std::string pathText; ///< external path profile (P4/P4e)
    profile::AdmissionMode check = profile::AdmissionMode::Repair;
    /** Flow-check slack, see profile::ValidateOptions::flowSlack. */
    uint64_t flowSlack = 1;
};

/** Resource governance and fault injection (docs/robustness.md). */
struct RobustnessOptions
{
    /**
     * A run-wide deadline plus per-procedure growth/op budgets and an
     * interpreter step budget.  A per-procedure budget exhaustion
     * degrades exactly the affected procedure to BB through the
     * quarantine path; deadline expiry degrades the in-flight
     * procedure and then ends the run with a typed DeadlineExceeded
     * status.  Default-constructed = no governance: the pipeline
     * behaves bit-identically to an unbudgeted run.
     */
    ResourceBudget budget;

    /**
     * Optional fault injector (not owned; see support/faultinject.hpp).
     * runPipeline consults it at every per-procedure stage boundary
     * ("form", "materialize", "gcm", "compact", "regalloc", "verify",
     * "output-compare") and treats a hit exactly like a real failure
     * of that stage, degrading the procedure to BB.  Quarantined
     * procedures and the BB fallback itself are never re-injected, so
     * an armed fault cannot make the fallback fail.  Null disables
     * injection entirely.  Queries are serialized by the pipeline, so
     * injection is safe (though attribution of count=/prob= faults is
     * scheduling-dependent) under a multi-threaded executor.
     */
    FaultInjector *faults = nullptr;
};

/** Observability sinks (docs/observability.md).
 *
 * With an observer attached, every stage registers its counters
 * ("<stage>.<config>.<counter>", e.g. "form.P4.superblocks") and
 * wall-time distributions ("time.<config>.<stage>") into
 * observer->stats, and emits trace events into observer->trace.  Both
 * sinks are optional; a null observer costs nothing beyond the
 * per-stage clock reads that fill PipelineResult::stages.  Under a
 * multi-threaded executor, per-procedure tasks record into private
 * registries that merge into observer->stats at the serial join, in
 * procedure-id order — counter totals are thread-count-invariant;
 * trace events are only emitted from single-threaded runs. */
struct ObsOptions
{
    const obs::Observer *observer = nullptr;
    /** Attach interp::StatsListener to the train and test runs
     *  ("interp.<config>.{train,test}.*").  Slows the interpreter by a
     *  per-op callback, so keep off for timing-sensitive runs. */
    bool interpStats = false;
};

/** Task executor and stage cache (docs/architecture.md). */
struct ExecutorOptions
{
    /** Worker threads for the per-procedure stage DAG; 1 = run inline
     *  on the calling thread, 0 = one per hardware thread.  Output is
     *  bit-identical for every value. */
    unsigned threads = 1;
    /** Ready-task scheduling policy (threads > 1 only). */
    ExecPolicy policy = ExecPolicy::Steal;
    /** Optional transform-chain memoization (not owned; may be shared
     *  across runs and threads).  Null disables caching. */
    StageCache *cache = nullptr;
};
/** @} */

/** Everything configurable about one pipeline run. */
struct PipelineOptions
{
    machine::MachineModel machine = machine::MachineModel::unitLatency();
    /** Attach the I-cache during the test run (Figs. 5/6). */
    bool useICache = false;
    icache::ICache::Params cacheParams;
    /** Run linear-scan allocation plus postschedule. */
    bool registerAllocate = true;
    /** Order procedures with Pettis-Hansen placement. */
    bool pettisHansen = true;
    /** Block address order within procedures (hot-first ablation). */
    layout::BlockOrder blockOrder = layout::BlockOrder::ById;
    /** Path-profiler depth etc. (paper: 15 branches). */
    profile::PathProfileParams pathParams;
    /** Enlargement gate: required completion frequency. */
    double completionThreshold = 0.50;
    /** Superblock instruction-count cap. */
    uint32_t maxInstrs = 256;
    /** Disable the enlargement step entirely (ablation). */
    bool enlarge = true;
    /** Also grow traces upward from seeds (footnote 2 ablation). */
    bool growUpward = false;
    /** List-scheduler candidate priority (ablation). */
    sched::SchedPriority schedPriority =
        sched::SchedPriority::CriticalPath;
    /** Interpreter step ceiling (the runaway guard; the default is the
     *  interpreter's own, so the two can never drift apart). */
    uint64_t maxSteps = interp::kDefaultMaxSteps;
    /** Keep the transformed program in PipelineResult::transformed
     *  (for tests and tools that inspect the scheduled IR). */
    bool keepTransformed = false;

    /** @name Option groups (see above) @{ */
    ProfileInput profileInput;
    RobustnessOptions robustness;
    ObsOptions observability;
    ExecutorOptions executor;
    /** @} */

    class Builder;
};

/**
 * Fluent construction of PipelineOptions — group membership becomes an
 * implementation detail at call sites:
 *
 *   auto opts = PipelineOptions::Builder()
 *                   .machine(machine::MachineModel::realisticLatency())
 *                   .observer(&ob)
 *                   .threads(8)
 *                   .build();
 *
 * Each setter writes the (possibly grouped) field and returns *this;
 * build() returns the accumulated options by value.
 */
class PipelineOptions::Builder
{
  public:
    Builder() = default;
    /** Start from existing options. */
    explicit Builder(const PipelineOptions &base) : o_(base) {}

    Builder &machine(const machine::MachineModel &m)
    { o_.machine = m; return *this; }
    Builder &icache(bool on)
    { o_.useICache = on; return *this; }
    Builder &icache(bool on, const icache::ICache::Params &p)
    { o_.useICache = on; o_.cacheParams = p; return *this; }
    Builder &registerAllocate(bool on)
    { o_.registerAllocate = on; return *this; }
    Builder &pettisHansen(bool on)
    { o_.pettisHansen = on; return *this; }
    Builder &blockOrder(layout::BlockOrder order)
    { o_.blockOrder = order; return *this; }
    Builder &pathParams(const profile::PathProfileParams &p)
    { o_.pathParams = p; return *this; }
    Builder &completionThreshold(double t)
    { o_.completionThreshold = t; return *this; }
    Builder &maxInstrs(uint32_t n)
    { o_.maxInstrs = n; return *this; }
    Builder &enlarge(bool on)
    { o_.enlarge = on; return *this; }
    Builder &growUpward(bool on)
    { o_.growUpward = on; return *this; }
    Builder &schedPriority(sched::SchedPriority p)
    { o_.schedPriority = p; return *this; }
    Builder &maxSteps(uint64_t n)
    { o_.maxSteps = n; return *this; }
    Builder &keepTransformed(bool on)
    { o_.keepTransformed = on; return *this; }

    Builder &edgeProfile(std::string text)
    { o_.profileInput.edgeText = std::move(text); return *this; }
    Builder &pathProfile(std::string text)
    { o_.profileInput.pathText = std::move(text); return *this; }
    Builder &profileCheck(profile::AdmissionMode mode)
    { o_.profileInput.check = mode; return *this; }
    Builder &profileFlowSlack(uint64_t slack)
    { o_.profileInput.flowSlack = slack; return *this; }

    Builder &budget(const ResourceBudget &b)
    { o_.robustness.budget = b; return *this; }
    Builder &faults(FaultInjector *f)
    { o_.robustness.faults = f; return *this; }

    Builder &observer(const obs::Observer *ob)
    { o_.observability.observer = ob; return *this; }
    Builder &interpStats(bool on)
    { o_.observability.interpStats = on; return *this; }

    Builder &threads(unsigned n)
    { o_.executor.threads = n; return *this; }
    Builder &execPolicy(ExecPolicy p)
    { o_.executor.policy = p; return *this; }
    Builder &cache(StageCache *c)
    { o_.executor.cache = c; return *this; }

    PipelineOptions build() const { return o_; }

  private:
    PipelineOptions o_;
};

/** One procedure degraded to the BB baseline during a pipeline run. */
struct Degradation
{
    ir::ProcId proc = 0;
    std::string procName;
    /** Stage boundary that failed: "profile" (admission quarantined
     *  the procedure before its transform), "form", "materialize",
     *  "gcm", "compact", "regalloc", "verify", "output-compare", or
     *  "interp" (the measured test run blew its step budget inside
     *  this procedure). */
    std::string stage;
    ErrorKind kind = ErrorKind::Injected;
    std::string message;
};

/** Executor and cache activity of one run (report: "executor"). */
struct ExecReport
{
    unsigned threads = 1;       ///< worker threads actually used
    ExecPolicy policy = ExecPolicy::Steal;
    uint64_t tasks = 0;         ///< per-procedure stage tasks executed
    uint64_t steals = 0;        ///< tasks taken from another worker
    bool cacheEnabled = false;  ///< a StageCache was attached
    uint64_t cacheHits = 0;     ///< this run's chain-level cache hits
    uint64_t cacheMisses = 0;   ///< this run's eligible lookup misses
};

/** Measurements from one (program, config) pipeline run. */
struct PipelineResult
{
    SchedConfig config = SchedConfig::BB;
    std::string name;

    interp::RunResult test;   ///< the measured (transformed) test run
    form::FormStats form;
    sched::GcmStats gcm;      ///< global code motion (G4 family only)
    sched::CompactStats compact;
    regalloc::AllocStats alloc;

    uint64_t codeBytes = 0;   ///< laid-out binary size
    size_t numPaths = 0;      ///< distinct paths in the train profile
    uint64_t trainSteps = 0;  ///< dynamic ops in the training run
    bool outputMatches = false; ///< transformed output == original output

    /**
     * Overall run status.  Non-OK means the run could not complete at
     * all (invalid input program, training/reference run over the step
     * ceiling) and the measurement fields are not meaningful.  A
     * *degraded* run — some procedures fell back to BB — still
     * completes with an OK status; check degradedRun().
     */
    Status status;
    /** Procedures degraded to BB, in procedure-id order per phase
     *  (the canonical order: identical for every thread count). */
    std::vector<Degradation> degraded;
    /** The run completed but at least one procedure fell back to BB. */
    bool degradedRun() const { return !degraded.empty(); }
    /** The run was governed by a non-empty ResourceBudget. */
    bool budgeted = false;
    /** Admission verdict on externally supplied profiles (enabled is
     *  false when no external profile was checked). */
    profile::ProfileAudit profileAudit;
    /** The transformed program, when keepTransformed was set and the
     *  run completed. */
    std::shared_ptr<const ir::Program> transformed;
    /** Degradations caused by budget or deadline exhaustion. */
    size_t budgetDegradations() const;

    /** Executor and stage-cache activity (threads, tasks, steals,
     *  hits).  Always filled, even for single-threaded runs. */
    ExecReport exec;

    /** Wall time of every pipeline stage, in execution order (always
     *  collected; independent of the observer).  Per-procedure stages
     *  report the sum of their tasks' wall times. */
    std::vector<obs::StageTiming> stages;

    /** Total wall time across stages, ms. */
    double totalMs() const;
};

/** Derive the FormConfig a SchedConfig stands for. */
form::FormConfig formConfigFor(SchedConfig config,
                               const PipelineOptions &options);

/**
 * Run the full pipeline: profile @p program on @p train, transform per
 * @p config, measure on @p test.  @p program itself is not modified.
 *
 * Recovery contract: an invalid input program or a training/reference
 * run over the step ceiling returns early with a non-OK
 * PipelineResult::status.  A per-procedure stage failure (or an
 * injected fault) degrades that procedure to BB and the run completes
 * — see PipelineResult::degraded.  An output mismatch that survives
 * degrading every suspect procedure to BB is an internal bug and
 * panics, as does a failure of the BB fallback itself.
 */
PipelineResult runPipeline(const ir::Program &program,
                           const interp::ProgramInput &train,
                           const interp::ProgramInput &test,
                           SchedConfig config,
                           const PipelineOptions &options);

} // namespace pathsched::pipeline

#endif // PATHSCHED_PIPELINE_PIPELINE_HPP
