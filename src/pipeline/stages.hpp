/**
 * @file
 * The unified per-procedure stage API.
 *
 * Every transform stage exposes exactly two entry points, and this
 * header is their single point of truth:
 *
 *  - the **Status-returning per-procedure form** —
 *    form::formProcedure, sched::compactProcedure,
 *    regalloc::allocateProcedure, sched::scheduleProcedure,
 *    ir::verifyProcStatus — which reports recoverable failure as a
 *    typed Status and never aborts.  This is the ONLY form the
 *    pipeline executor calls: executor tasks need attributable,
 *    recoverable failure (quarantine one procedure, keep its
 *    siblings), and a panic inside a worker would take the whole pool
 *    down.
 *
 *  - the **panicking whole-program wrapper** — formProgram,
 *    compactProgram, allocateProgram — a convenience for tools, tests
 *    and benchmarks that want the historical "it works or it aborts"
 *    contract.  These are thin delegates: forEachProcOrDie() below is
 *    the one shared loop-and-panic body, so a wrapper can never drift
 *    from its per-procedure Status twin.
 *
 * The historical duplicated loop bodies in form.cpp / compact.cpp /
 * linear_scan.cpp are gone; new stages should follow the same pattern
 * (write the Status form, delegate the wrapper through here).
 */

#ifndef PATHSCHED_PIPELINE_STAGES_HPP
#define PATHSCHED_PIPELINE_STAGES_HPP

#include "ir/procedure.hpp"
#include "support/logging.hpp"
#include "support/status.hpp"

namespace pathsched::pipeline {

/**
 * Run the Status-returning per-procedure callable @p fn over every
 * procedure of @p prog in id order, panicking on the first failure
 * with @p stage naming the pass ("formation", "compaction", "register
 * allocation").  The shared body behind every panicking whole-program
 * stage wrapper.
 */
template <typename Fn>
void
forEachProcOrDie(ir::Program &prog, const char *stage, Fn &&fn)
{
    for (ir::ProcId p = 0; p < prog.procs.size(); ++p) {
        Status st = fn(p);
        if (!st.ok())
            panic("%s failed for proc %s: %s", stage,
                  prog.procs[p].name.c_str(), st.toString().c_str());
    }
}

} // namespace pathsched::pipeline

#endif // PATHSCHED_PIPELINE_STAGES_HPP
