/**
 * @file
 * Work-distributing task executor for per-procedure pipeline stages.
 *
 * Every per-procedure transform stage (form, compact, regalloc,
 * postschedule, verify) is independent across procedures; only the
 * stage order *within* one procedure matters.  runPipeline expresses
 * that as a TaskGraph — one node per (procedure, stage), with an edge
 * from each stage to the next stage of the same procedure — and hands
 * it to an Executor, which runs the graph on a pool of worker threads
 * under a selectable work-distribution policy (the OpenMP
 * static/dynamic/steal trichotomy):
 *
 *  - static:  every node is pre-assigned to worker (affinity mod
 *             threads); workers never exchange work.  Predictable, but
 *             idles workers whose procedures finish early.
 *  - dynamic: one shared FIFO ready queue; workers pull the oldest
 *             ready node.  Good load balance, central contention.
 *  - steal:   per-worker deques; a worker pushes nodes it unblocks
 *             onto its own deque (so a procedure's chain stays local)
 *             and steals from a sibling's tail when it runs dry.
 *
 * Determinism contract: tasks must write only task-owned state (the
 * pipeline gives each procedure its own stats/context and merges them
 * in procedure-id order at the join), so the *results* are identical
 * under every policy and thread count.  With threads <= 1 the executor
 * runs nodes inline on the calling thread in ready-FIFO order — for a
 * stage-major graph that is exactly the historical serial loop order,
 * which is what makes "serial" just the 1-thread schedule of the same
 * graph.
 *
 * Tasks are coarse (a whole pass over one procedure), so the queues are
 * guarded by one mutex rather than lock-free deques; the lock cost is
 * noise next to task bodies.
 */

#ifndef PATHSCHED_PIPELINE_EXECUTOR_HPP
#define PATHSCHED_PIPELINE_EXECUTOR_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace pathsched::pipeline {

/** Work-distribution policy of the Executor (see the file comment). */
enum class ExecPolicy
{
    Static,
    Dynamic,
    Steal,
};

/** Lower-case CLI name, e.g. "steal". */
const char *execPolicyName(ExecPolicy policy);

/** Parse a CLI name ("static" | "dynamic" | "steal"); false if bad. */
bool parseExecPolicy(const std::string &name, ExecPolicy &out);

/** What one Executor::run did. */
struct ExecStats
{
    unsigned threads = 1;   ///< workers actually used
    ExecPolicy policy = ExecPolicy::Steal;
    uint64_t tasks = 0;     ///< nodes executed
    uint64_t steals = 0;    ///< nodes taken from another worker's deque
};

/**
 * A dependency DAG of runnable tasks.  Nodes are added in a fixed
 * order; dependencies must point at already-added nodes, which makes
 * cycles unrepresentable.  The node order doubles as the deterministic
 * inline (threads <= 1) execution order among simultaneously-ready
 * nodes.
 */
class TaskGraph
{
  public:
    using Fn = std::function<void()>;

    /**
     * Append a node running @p fn after every node in @p deps.
     * @p affinity groups nodes that should share a worker under the
     * static policy (the pipeline passes the procedure id, keeping each
     * procedure's stage chain on one worker); negative means "any".
     * Returns the node id for use in later deps lists.
     */
    size_t add(Fn fn, const std::vector<size_t> &deps = {},
               int affinity = -1);

    size_t size() const { return nodes_.size(); }

  private:
    friend class Executor;

    struct Node
    {
        Fn fn;
        std::vector<size_t> succs;
        uint32_t preds = 0;
        int affinity = -1;
    };

    std::vector<Node> nodes_;
};

/** Runs TaskGraphs; see the file comment. */
class Executor
{
  public:
    /** @p threads = 0 selects hardwareThreads(). */
    explicit Executor(unsigned threads,
                      ExecPolicy policy = ExecPolicy::Steal);

    /**
     * Execute every node of @p graph, respecting dependencies; returns
     * once all nodes have run.  The graph is consumed (node functions
     * are moved out as they run).
     */
    ExecStats run(TaskGraph &graph);

    unsigned threads() const { return threads_; }
    ExecPolicy policy() const { return policy_; }

    /** std::thread::hardware_concurrency(), clamped to >= 1. */
    static unsigned hardwareThreads();

  private:
    unsigned threads_;
    ExecPolicy policy_;
};

} // namespace pathsched::pipeline

#endif // PATHSCHED_PIPELINE_EXECUTOR_HPP
