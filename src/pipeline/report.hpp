/**
 * @file
 * Machine-readable pipeline reports.
 *
 * Serializes PipelineResult trees (plus an optional StatRegistry) into
 * the JSON document pathsched_cli --json emits and the BENCH_*.json
 * trajectory files build on.  The document shape is versioned through
 * the "schema" member; tests/report_test.cpp round-trips it and guards
 * the members external tooling depends on ("runs[*].workload",
 * "runs[*].config", "runs[*].test.cycles").
 */

#ifndef PATHSCHED_PIPELINE_REPORT_HPP
#define PATHSCHED_PIPELINE_REPORT_HPP

#include <functional>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/stats.hpp"
#include "pipeline/pipeline.hpp"

namespace pathsched::pipeline {

/** The report's schema tag ("schema" member of the document). */
extern const char kReportSchema[];

/** One (workload, result) row of a report. */
struct ReportRun
{
    std::string workload;
    PipelineResult result;
};

/** Serialize one PipelineResult as a JSON object into @p w. */
void resultToJson(obs::JsonWriter &w, const std::string &workload,
                  const PipelineResult &r);

/**
 * Build the full report document: {"schema": ..., "runs": [...],
 * "stats": {...}}.  @p stats may be null (the member is omitted).
 * @p extra, when set, is called with the writer positioned at the
 * document's top level so a caller can append additive members (e.g.
 * the serve layer's "health" block) without forking the schema; it
 * must emit whole key+value pairs.
 */
std::string reportJson(
    const std::vector<ReportRun> &runs,
    const obs::StatRegistry *stats = nullptr,
    const std::function<void(obs::JsonWriter &)> &extra = nullptr);

/** Write reportJson() to @p path ("-" means stdout); false on I/O
 *  failure. */
bool writeReportFile(const std::string &path,
                     const std::vector<ReportRun> &runs,
                     const obs::StatRegistry *stats = nullptr);

} // namespace pathsched::pipeline

#endif // PATHSCHED_PIPELINE_REPORT_HPP
