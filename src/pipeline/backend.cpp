#include "pipeline/backend.hpp"

#include <cstring>
#include <deque>

#include "profile/edge_profile.hpp"
#include "profile/path_profile.hpp"
#include "support/logging.hpp"

namespace pathsched::pipeline {

form::FormConfig
formConfigFor(SchedConfig config, const PipelineOptions &options)
{
    form::FormConfig fc;
    fc.completionThreshold = options.completionThreshold;
    fc.maxInstrs = options.maxInstrs;
    fc.enlarge = options.enlarge;
    fc.growUpward = options.growUpward;
    switch (config) {
      case SchedConfig::BB:
      case SchedConfig::G4:
        break; // no formation stage
      case SchedConfig::M4:
        fc.mode = form::ProfileMode::Edge;
        fc.unrollFactor = 4;
        break;
      case SchedConfig::M16:
        fc.mode = form::ProfileMode::Edge;
        fc.unrollFactor = 16;
        break;
      case SchedConfig::P4:
        fc.mode = form::ProfileMode::Path;
        fc.maxLoopHeads = 4;
        break;
      case SchedConfig::P4e:
        fc.mode = form::ProfileMode::Path;
        fc.maxLoopHeads = 4;
        fc.nonLoopStopsAtAnyHead = true;
        break;
      case SchedConfig::G4e:
        // Enlargement on top of GCM: the P4 path-driven formation.
        fc.mode = form::ProfileMode::Path;
        fc.maxLoopHeads = 4;
        break;
    }
    return fc;
}

namespace {

/** The superblock family's transform: formation (with the projected-
 *  edge degradation cascade) bracketed by the "form"/"materialize"
 *  injection boundaries. */
Status
superblockTransform(ir::Program &prog, ir::ProcId proc,
                    const TransformContext &ctx, TransformStats &stats,
                    const char **failedStage)
{
    form::FormConfig fc = formConfigFor(ctx.config, *ctx.opt);
    if (ctx.useProjectedEdges) {
        // Degradation cascade for procedures whose path profile lost
        // windows to admission but still projects consistently: form
        // them edge-driven (M4-style) from the projection.
        fc.mode = form::ProfileMode::Edge;
        fc.unrollFactor = 4;
    }
    const obs::Observer form_obs = ctx.timed->withPrefix("form.");
    fc.observer = &form_obs;
    fc.budget = ctx.budget;
    *failedStage = "form";
    Status st = ctx.injectAt("form");
    if (st.ok())
        st = ctx.useProjectedEdges
                 ? form::formProcedure(prog, proc, ctx.projectedEdge,
                                       nullptr, fc, stats.form)
                 : form::formProcedure(prog, proc, ctx.edge, ctx.path,
                                       fc, stats.form);
    if (st.ok()) {
        *failedStage = "materialize";
        st = ctx.injectAt("materialize");
    }
    return st;
}

/** Shared GCM step of the G4 family: edge-profile block frequencies
 *  feed placement; the machine model feeds latency-aware hoisting. */
Status
gcmStep(ir::Program &prog, ir::ProcId proc, const TransformContext &ctx,
        TransformStats &stats, const char **failedStage)
{
    *failedStage = "gcm";
    Status st = ctx.injectAt("gcm");
    if (!st.ok())
        return st;
    const size_t num_blocks = prog.procs[proc].blocks.size();
    std::vector<uint64_t> freqs(num_blocks, 0);
    for (size_t b = 0; b < num_blocks; ++b)
        freqs[b] = ctx.edge->blockFreq(proc, ir::BlockId(b));
    sched::GcmOptions go;
    go.machine = &ctx.opt->machine;
    go.blockFreq = &freqs;
    go.budget = ctx.budget;
    const obs::Observer gcm_obs = ctx.timed->withPrefix("gcm.");
    go.observer = &gcm_obs;
    return sched::gcmProcedure(prog, proc, go, stats.gcm);
}

Status
gcmTransform(ir::Program &prog, ir::ProcId proc,
             const TransformContext &ctx, TransformStats &stats,
             const char **failedStage)
{
    return gcmStep(prog, proc, ctx, stats, failedStage);
}

/** G4e: global code motion first, then path-driven enlargement of the
 *  (unchanged-shape) CFG — the profiles stay valid across GCM because
 *  no block is created, destroyed or re-targeted. */
Status
gcmEnlargeTransform(ir::Program &prog, ir::ProcId proc,
                    const TransformContext &ctx, TransformStats &stats,
                    const char **failedStage)
{
    Status st = gcmStep(prog, proc, ctx, stats, failedStage);
    if (!st.ok())
        return st;
    return superblockTransform(prog, proc, ctx, stats, failedStage);
}

/** Formation/path knobs shared by every superblock-forming backend. */
void
superblockKnobsHash(KeyHasher &h, const PipelineOptions &opt)
{
    uint64_t threshold_bits = 0;
    static_assert(sizeof threshold_bits ==
                  sizeof opt.completionThreshold);
    std::memcpy(&threshold_bits, &opt.completionThreshold,
                sizeof threshold_bits);
    h.u64(threshold_bits)
        .u64(opt.maxInstrs)
        .u64(opt.enlarge ? 1 : 0)
        .u64(opt.growUpward ? 1 : 0)
        .u64(opt.pathParams.maxBranches)
        .u64(opt.pathParams.maxBlocks)
        .u64(opt.pathParams.forwardPathsOnly ? 1 : 0);
}

class Registry
{
  public:
    Registry()
    {
        BackendDesc d;

        d.config = SchedConfig::BB;
        d.name = "BB";
        d.summary = "basic-block scheduling (Table 1 baseline)";
        add(d);

        d = BackendDesc();
        d.config = SchedConfig::M4;
        d.name = "M4";
        d.summary = "edge profile, mutual-most-likely, unroll 4";
        d.edgeProfile = true;
        d.formsSuperblocks = true;
        d.transform = superblockTransform;
        d.knobsHash = superblockKnobsHash;
        add(d);

        d.config = SchedConfig::M16;
        d.name = "M16";
        d.summary = "edge profile, mutual-most-likely, unroll 16";
        add(d);

        d = BackendDesc();
        d.config = SchedConfig::P4;
        d.name = "P4";
        d.summary = "path profile, <= 4 superblock-loop heads";
        d.pathProfile = true;
        d.formsSuperblocks = true;
        d.transform = superblockTransform;
        d.knobsHash = superblockKnobsHash;
        add(d);

        d.config = SchedConfig::P4e;
        d.name = "P4e";
        d.summary = "P4, non-loop superblocks stop at any head";
        add(d);

        d = BackendDesc();
        d.config = SchedConfig::G4;
        d.name = "G4";
        d.summary = "global code motion (Click GCM) on the original CFG";
        d.edgeProfile = true;
        d.usesGcm = true;
        d.transformLabel = "gcm";
        d.transform = gcmTransform;
        add(d);

        d.config = SchedConfig::G4e;
        d.name = "G4e";
        d.summary = "GCM plus P4-style path-driven enlargement";
        d.pathProfile = true;
        d.formsSuperblocks = true;
        d.transform = gcmEnlargeTransform;
        d.knobsHash = superblockKnobsHash;
        add(d);
    }

    void
    add(const BackendDesc &desc)
    {
        if (byName(desc.name) != nullptr)
            panic("backend name '%s' registered twice", desc.name);
        if (byConfig(desc.config) != nullptr)
            panic("backend config %d registered twice",
                  int(desc.config));
        storage_.push_back(desc);
        list_.push_back(&storage_.back());
    }

    const BackendDesc *
    byName(const std::string &name) const
    {
        for (const BackendDesc *d : list_) {
            if (name == d->name)
                return d;
        }
        return nullptr;
    }

    const BackendDesc *
    byConfig(SchedConfig config) const
    {
        for (const BackendDesc *d : list_) {
            if (d->config == config)
                return d;
        }
        return nullptr;
    }

    const std::vector<const BackendDesc *> &
    list() const
    {
        return list_;
    }

  private:
    /** deque: descriptor addresses stay stable across registrations. */
    std::deque<BackendDesc> storage_;
    std::vector<const BackendDesc *> list_;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

} // namespace

const BackendDesc &
backendFor(SchedConfig config)
{
    const BackendDesc *d = registry().byConfig(config);
    if (d == nullptr)
        panic("no backend registered for SchedConfig %d", int(config));
    return *d;
}

const BackendDesc *
findBackend(const std::string &name)
{
    return registry().byName(name);
}

const std::vector<const BackendDesc *> &
allBackends()
{
    return registry().list();
}

void
registerBackend(const BackendDesc &desc)
{
    registry().add(desc);
}

const char *
configName(SchedConfig config)
{
    return backendFor(config).name;
}

} // namespace pathsched::pipeline
