#include "pipeline/report.hpp"

#include <cstdio>
#include <fstream>

namespace pathsched::pipeline {

const char kReportSchema[] = "pathsched.report.v1";

void
resultToJson(obs::JsonWriter &w, const std::string &workload,
             const PipelineResult &r)
{
    w.beginObject();
    w.member("workload", workload);
    w.member("config", r.name);
    w.member("codeBytes", r.codeBytes);
    w.member("numPaths", uint64_t(r.numPaths));
    w.member("trainSteps", r.trainSteps);
    w.member("outputMatches", r.outputMatches);

    // Robustness (additive to the v1 schema): overall status plus any
    // procedures that fell back to BB during this run.
    w.member("status", r.status.toString());
    w.member("degraded", uint64_t(r.degraded.size()));
    if (r.budgeted) {
        // Gated on governance so unbudgeted reports stay byte-identical
        // to pre-budget builds.
        w.key("budget");
        w.beginObject();
        w.member("exhausted", uint64_t(r.budgetDegradations()));
        w.endObject();
    }
    if (r.profileAudit.enabled) {
        // Profile admission (additive to the v1 schema): emitted only
        // when an external profile was checked, so ordinary runs stay
        // byte-identical to pre-admission builds.
        const profile::ProfileAudit &a = r.profileAudit;
        w.key("profileAudit");
        w.beginObject();
        w.member("clean", a.clean());
        w.member("fileRejected", a.fileRejected);
        if (a.fileRejected)
            w.member("fileStatus", a.fileStatus.toString());
        w.member("checked", a.checked);
        w.member("repaired", a.repaired);
        w.member("quarantined", a.quarantined);
        w.member("staleProcs", a.staleProcs);
        w.member("droppedPaths", a.droppedPaths);
        if (!a.procs.empty()) {
            w.key("procs");
            w.beginArray();
            for (const auto &pa : a.procs) {
                w.beginObject();
                w.member("proc", uint64_t(pa.proc));
                w.member("procName", pa.procName);
                w.member("action", profile::procActionName(pa.action));
                w.member("kind", errorKindName(pa.kind));
                w.member("droppedPaths", pa.droppedPaths);
                w.member("message", pa.message);
                w.endObject();
            }
            w.endArray();
        }
        w.endObject();
    }
    if (!r.degraded.empty()) {
        w.key("degradations");
        w.beginArray();
        for (const auto &d : r.degraded) {
            w.beginObject();
            w.member("proc", uint64_t(d.proc));
            w.member("procName", d.procName);
            w.member("stage", d.stage);
            w.member("kind", errorKindName(d.kind));
            w.member("message", d.message);
            w.endObject();
        }
        w.endArray();
    }

    w.key("test");
    w.beginObject();
    w.member("cycles", r.test.cycles);
    w.member("dynInstrs", r.test.dynInstrs);
    w.member("dynBranches", r.test.dynBranches);
    w.member("dynCalls", r.test.dynCalls);
    w.member("stallCycles", r.test.stallCycles);
    w.member("icacheAccesses", r.test.icacheAccesses);
    w.member("icacheMisses", r.test.icacheMisses);
    w.member("sbEntries", r.test.sbEntries);
    w.member("sbCompletions", r.test.sbCompletions);
    w.member("sbAvgBlocksExecuted", r.test.sbAvgBlocksExecuted());
    w.member("sbAvgBlocksInSuperblock",
             r.test.sbAvgBlocksInSuperblock());
    w.endObject();

    w.key("form");
    w.beginObject();
    w.member("tracesSelected", r.form.tracesSelected);
    w.member("multiBlockTraces", r.form.multiBlockTraces);
    w.member("superblocksFormed", r.form.superblocksFormed);
    w.member("enlargedSuperblocks", r.form.enlargedSuperblocks);
    w.member("blocksDuplicated", r.form.blocksDuplicated);
    w.member("unreachableRemoved", r.form.unreachableRemoved);
    w.endObject();

    w.key("compact");
    w.beginObject();
    w.key("opt");
    w.beginObject();
    w.member("copiesPropagated", r.compact.opt.copiesPropagated);
    w.member("constantsFolded", r.compact.opt.constantsFolded);
    w.member("chainsFolded", r.compact.opt.chainsFolded);
    w.member("deadRemoved", r.compact.opt.deadRemoved);
    w.endObject();
    w.key("rename");
    w.beginObject();
    w.member("defsRenamed", r.compact.rename.defsRenamed);
    w.member("stubsCreated", r.compact.rename.stubsCreated);
    w.member("copiesInserted", r.compact.rename.copiesInserted);
    w.endObject();
    w.key("sched");
    w.beginObject();
    w.member("blocksScheduled", r.compact.sched.blocksScheduled);
    w.member("loadsSpeculated", r.compact.sched.loadsSpeculated);
    w.member("totalCycles", r.compact.sched.totalCycles);
    w.endObject();
    w.endObject();

    w.key("alloc");
    w.beginObject();
    w.member("procsAllocated", r.alloc.procsAllocated);
    w.member("procsSkipped", r.alloc.procsSkipped);
    w.member("regsSpilled", r.alloc.regsSpilled);
    w.member("maxPressure", uint64_t(r.alloc.maxPressure));
    w.endObject();

    w.key("executor");
    w.beginObject();
    w.member("threads", uint64_t(r.exec.threads));
    w.member("policy", execPolicyName(r.exec.policy));
    w.member("tasks", r.exec.tasks);
    w.member("steals", r.exec.steals);
    w.member("cacheEnabled", r.exec.cacheEnabled);
    if (r.exec.cacheEnabled) {
        w.member("cacheHits", r.exec.cacheHits);
        w.member("cacheMisses", r.exec.cacheMisses);
    }
    w.endObject();

    w.key("stages");
    w.beginArray();
    for (const auto &s : r.stages) {
        w.beginObject();
        w.member("name", s.name);
        w.member("ms", s.ms);
        w.endObject();
    }
    w.endArray();
    w.member("totalMs", r.totalMs());

    w.endObject();
}

std::string
reportJson(const std::vector<ReportRun> &runs,
           const obs::StatRegistry *stats,
           const std::function<void(obs::JsonWriter &)> &extra)
{
    obs::JsonWriter w;
    w.beginObject();
    w.member("schema", kReportSchema);
    w.key("runs");
    w.beginArray();
    for (const auto &run : runs)
        resultToJson(w, run.workload, run.result);
    w.endArray();
    if (stats != nullptr) {
        w.key("stats");
        stats->toJson(w);
    }
    if (extra)
        extra(w);
    w.endObject();
    return w.str();
}

bool
writeReportFile(const std::string &path,
                const std::vector<ReportRun> &runs,
                const obs::StatRegistry *stats)
{
    const std::string doc = reportJson(runs, stats);
    if (path == "-") {
        std::fwrite(doc.data(), 1, doc.size(), stdout);
        std::fputc('\n', stdout);
        return true;
    }
    std::ofstream out(path);
    if (!out)
        return false;
    out << doc << '\n';
    return bool(out);
}

} // namespace pathsched::pipeline
