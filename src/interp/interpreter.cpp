#include "interp/interpreter.hpp"

#include "support/logging.hpp"

namespace pathsched::interp {

using ir::BlockId;
using ir::Instruction;
using ir::kNoBlock;
using ir::kNoReg;
using ir::Opcode;
using ir::ProcId;
using ir::RegId;

namespace {

/** One procedure activation. */
struct Frame
{
    ProcId proc = ir::kNoProc;
    BlockId block = 0;
    /** Next instruction index within the block (for call resume). */
    size_t instrIdx = 0;
    /** Register the caller's Call writes on return; kNoReg for void. */
    RegId retDst = kNoReg;
    std::vector<int64_t> regs;
};

int64_t
aluOp(Opcode op, int64_t a, int64_t b)
{
    const uint64_t ua = uint64_t(a), ub = uint64_t(b);
    switch (op) {
      case Opcode::Add: return int64_t(ua + ub);
      case Opcode::Sub: return int64_t(ua - ub);
      case Opcode::Mul: return int64_t(ua * ub);
      case Opcode::Div:
        if (b == 0)
            return 0;
        if (a == INT64_MIN && b == -1)
            return a;
        return a / b;
      case Opcode::Rem:
        if (b == 0)
            return 0;
        if (a == INT64_MIN && b == -1)
            return 0;
        return a % b;
      case Opcode::And: return a & b;
      case Opcode::Or: return a | b;
      case Opcode::Xor: return a ^ b;
      case Opcode::Shl: return int64_t(ua << (ub & 63));
      case Opcode::Shr: return a >> (ub & 63);
      case Opcode::CmpEq: return a == b;
      case Opcode::CmpNe: return a != b;
      case Opcode::CmpLt: return a < b;
      case Opcode::CmpLe: return a <= b;
      case Opcode::CmpGt: return a > b;
      case Opcode::CmpGe: return a >= b;
      default:
        panic("aluOp: %s is not an ALU opcode", opcodeName(op));
    }
}

} // namespace

RunResult
Interpreter::run(const ProgramInput &input)
{
    RunResult res;
    ps_assert(prog_.mainProc != ir::kNoProc);
    ps_assert_msg(opts_.cache == nullptr || opts_.codeLayout != nullptr,
                  "an attached I-cache requires a code layout");

    std::vector<int64_t> mem(prog_.memWords, 0);
    ps_assert_msg(input.memImage.size() <= mem.size(),
                  "memory image (%zu words) exceeds program memory (%zu)",
                  input.memImage.size(), mem.size());
    std::copy(input.memImage.begin(), input.memImage.end(), mem.begin());

    // Frame stack with storage reuse: `depth` frames are live.
    std::vector<Frame> stack;
    size_t depth = 0;

    auto pushFrame = [&](ProcId proc, RegId ret_dst) -> Frame & {
        if (depth == stack.size())
            stack.emplace_back();
        Frame &f = stack[depth++];
        f.proc = proc;
        f.block = 0;
        f.instrIdx = 0;
        f.retDst = ret_dst;
        f.regs.assign(prog_.procs[proc].numRegs, 0);
        return f;
    };

    {
        Frame &f = pushFrame(prog_.mainProc, kNoReg);
        const auto &mainp = prog_.procs[prog_.mainProc];
        ps_assert_msg(input.mainArgs.size() <= mainp.numParams,
                      "too many main() arguments");
        for (size_t i = 0; i < input.mainArgs.size(); ++i)
            f.regs[i] = input.mainArgs[i];
    }
    for (auto *l : listeners_)
        l->onProcEnter(prog_.mainProc);

    uint64_t steps = 0;
    // Effective step ceiling: the typed budget when it undercuts the
    // runaway guard, else the guard itself (one compare per step).
    const uint64_t step_cap =
        opts_.budgetSteps != 0 && opts_.budgetSteps < opts_.maxSteps
            ? opts_.budgetSteps
            : opts_.maxSteps;
    const bool has_deadline = opts_.deadline.active();

    // Listeners that asked for per-op callbacks (see wantsOps()).
    std::vector<TraceListener *> op_listeners;
    for (auto *l : listeners_)
        if (l->wantsOps())
            op_listeners.push_back(l);
    const bool dispatch_ops = !op_listeners.empty();

    // Charge the cycle cost of leaving `block` at instruction `exit_idx`.
    auto chargeBlock = [&](const ir::Procedure &p, BlockId b,
                           size_t exit_idx) {
        const ir::BlockSchedule &sched = p.schedules[b];
        if (sched.valid)
            res.cycles += uint64_t(sched.cycleOf[exit_idx]) + 1;
        else
            res.cycles += exit_idx + 1;
    };

    // Record Fig. 7 statistics when leaving a superblock.
    auto noteSbExit = [&](const ir::Procedure &p, BlockId b,
                          size_t exit_idx, bool completed) {
        const ir::SuperblockInfo &sb = p.superblocks[b];
        if (!sb.isSuperblock)
            return;
        ++res.sbEntries;
        res.sbBlocksExecuted += uint64_t(sb.srcOrdinalOf[exit_idx]) + 1;
        res.sbBlocksInSb += sb.numSrcBlocks;
        if (completed)
            ++res.sbCompletions;
    };

    while (depth > 0) {
        Frame &f = stack[depth - 1];
        const ir::Procedure &p = prog_.procs[f.proc];
        const ir::BasicBlock &bb = p.blocks[f.block];

        bool frame_switch = false;
        while (!frame_switch) {
            ps_assert_msg(f.instrIdx < bb.instrs.size(),
                          "fell off the end of proc %s block %u",
                          p.name.c_str(), f.block);
            const size_t i = f.instrIdx;
            const Instruction &ins = bb.instrs[i];

            if (++steps > step_cap) {
                // Typed, recoverable stop: unwind every frame and let
                // the caller decide how severe a runaway run is.
                if (step_cap < opts_.maxSteps)
                    res.budgetStop = true;
                else
                    res.stepLimit = true;
                res.stopProc = f.proc;
                depth = 0;
                frame_switch = true;
                break;
            }
            if (has_deadline &&
                (steps & (kDeadlineCheckStride - 1)) == 0 &&
                opts_.deadline.expired()) {
                res.deadlineStop = true;
                res.stopProc = f.proc;
                depth = 0;
                frame_switch = true;
                break;
            }
            ++res.dynInstrs;

            if (dispatch_ops)
                for (auto *l : op_listeners)
                    l->onOp(f.proc, ins.op);

            if (opts_.cache) {
                const uint64_t addr =
                    opts_.codeLayout->instrAddr(f.proc, f.block, i);
                const uint32_t penalty = opts_.cache->access(addr);
                res.cycles += penalty;
                res.stallCycles += penalty;
            }

            switch (ins.op) {
              case Opcode::Mov:
                f.regs[ins.dst] = f.regs[ins.src1];
                break;
              case Opcode::Ldi:
                f.regs[ins.dst] = ins.imm;
                break;
              case Opcode::Ld: {
                const int64_t addr = f.regs[ins.src1] + ins.imm;
                if (addr < 0 || uint64_t(addr) >= mem.size())
                    fatal("proc %s block %u: load from invalid address "
                          "%lld",
                          p.name.c_str(), f.block, (long long)addr);
                f.regs[ins.dst] = mem[size_t(addr)];
                break;
              }
              case Opcode::LdSpec: {
                // Non-excepting: a bad speculative address yields 0, the
                // software analogue of the suppressed trap in §3.2.
                const int64_t addr = f.regs[ins.src1] + ins.imm;
                f.regs[ins.dst] =
                    (addr < 0 || uint64_t(addr) >= mem.size())
                        ? 0
                        : mem[size_t(addr)];
                break;
              }
              case Opcode::St: {
                const int64_t addr = f.regs[ins.src1] + ins.imm;
                if (addr < 0 || uint64_t(addr) >= mem.size())
                    fatal("proc %s block %u: store to invalid address "
                          "%lld",
                          p.name.c_str(), f.block, (long long)addr);
                mem[size_t(addr)] = f.regs[ins.src2];
                break;
              }
              case Opcode::Emit:
                res.output.push_back(f.regs[ins.src1]);
                break;
              case Opcode::Nop:
                break;
              case Opcode::Call: {
                ++res.dynCalls;
                if (opts_.collectCallCounts)
                    ++res.callCounts[{f.proc, ins.callee}];
                f.instrIdx = i + 1;
                Frame &callee = pushFrame(ins.callee, ins.dst);
                const auto &cp = prog_.procs[ins.callee];
                ps_assert(ins.args.size() == cp.numParams);
                // `f` may dangle after pushFrame reallocation: reload.
                Frame &caller = stack[depth - 2];
                for (size_t a = 0; a < ins.args.size(); ++a)
                    callee.regs[a] = caller.regs[ins.args[a]];
                for (auto *l : listeners_)
                    l->onProcEnter(ins.callee);
                frame_switch = true;
                break;
              }
              case Opcode::BrNz:
              case Opcode::BrZ: {
                ++res.dynBranches;
                const bool taken =
                    (f.regs[ins.src1] != 0) == (ins.op == Opcode::BrNz);
                const bool is_term = i + 1 == bb.instrs.size();
                BlockId next = kNoBlock;
                if (taken)
                    next = ins.target0;
                else if (is_term)
                    next = ins.target1;
                if (next != kNoBlock) {
                    chargeBlock(p, f.block, i);
                    noteSbExit(p, f.block, i, is_term);
                    for (auto *l : listeners_)
                        l->onEdge(f.proc, f.block, next);
                    f.block = next;
                    f.instrIdx = 0;
                    frame_switch = true;
                }
                break;
              }
              case Opcode::Jmp: {
                chargeBlock(p, f.block, i);
                noteSbExit(p, f.block, i, true);
                for (auto *l : listeners_)
                    l->onEdge(f.proc, f.block, ins.target0);
                f.block = ins.target0;
                f.instrIdx = 0;
                frame_switch = true;
                break;
              }
              case Opcode::Ret: {
                chargeBlock(p, f.block, i);
                noteSbExit(p, f.block, i, true);
                const int64_t value =
                    ins.src1 == kNoReg ? 0 : f.regs[ins.src1];
                const RegId ret_dst = f.retDst;
                for (auto *l : listeners_)
                    l->onProcExit(f.proc);
                --depth;
                if (depth == 0) {
                    res.returnValue = value;
                } else if (ret_dst != kNoReg) {
                    stack[depth - 1].regs[ret_dst] = value;
                }
                frame_switch = true;
                break;
              }
              default: // ALU
                f.regs[ins.dst] = aluOp(
                    ins.op, f.regs[ins.src1],
                    ins.useImm ? ins.imm : f.regs[ins.src2]);
                break;
            }

            if (!frame_switch)
                f.instrIdx = i + 1;
        }
    }

    if (opts_.cache) {
        res.icacheAccesses = opts_.cache->accesses();
        res.icacheMisses = opts_.cache->misses();
    }
    return res;
}

} // namespace pathsched::interp
