/**
 * @file
 * IR interpreter and cycle-accurate VLIW simulator.
 *
 * One engine serves three roles from the paper's methodology (§3):
 *  - the instrumented training run that feeds profilers (listeners);
 *  - the "compiled simulation" of scheduled code: blocks carry VLIW
 *    schedules, and an entry into a block costs `cycleOf(exit)+1`
 *    cycles (the full block cost when it completes);
 *  - the I-cache timing run: with a CodeLayout and an ICache attached,
 *    every executed operation's fetch goes through the cache and misses
 *    add the configured penalty.
 *
 * Blocks without a valid schedule cost one cycle per operation, which
 * only arises in tests; the experiment pipeline schedules every block.
 */

#ifndef PATHSCHED_INTERP_INTERPRETER_HPP
#define PATHSCHED_INTERP_INTERPRETER_HPP

#include <cstdint>
#include <map>
#include <vector>

#include "icache/icache.hpp"
#include "interp/listener.hpp"
#include "ir/procedure.hpp"
#include "layout/code_layout.hpp"
#include "support/budget.hpp"

namespace pathsched::interp {

/** Default runaway-guard step ceiling (InterpOptions::maxSteps).  The
 *  pipeline's PipelineOptions::maxSteps refers to this same constant so
 *  the two defaults can never drift apart. */
inline constexpr uint64_t kDefaultMaxSteps = 4'000'000'000ULL;

/** The deadline is polled every this many steps, so an expired wall
 *  budget truncates a run within ~microseconds while the clock read
 *  stays far off the per-step hot path. */
inline constexpr uint64_t kDeadlineCheckStride = 8192;

/** Input to one program run: main() arguments and a data-memory image. */
struct ProgramInput
{
    std::vector<int64_t> mainArgs;
    /** Initial contents of data memory word 0..size-1; rest is zero. */
    std::vector<int64_t> memImage;
};

/** Everything observable and measurable about one run. */
struct RunResult
{
    int64_t returnValue = 0;
    /** Values produced by Emit, in order: the program's output. */
    std::vector<int64_t> output;

    uint64_t dynInstrs = 0;     ///< operations executed
    uint64_t dynBranches = 0;   ///< conditional branches executed
    uint64_t dynCalls = 0;      ///< calls executed
    uint64_t cycles = 0;        ///< total cycles incl. cache stalls
    uint64_t stallCycles = 0;   ///< cycles lost to I-cache misses

    uint64_t icacheAccesses = 0;
    uint64_t icacheMisses = 0;

    /**
     * The run stopped because it reached InterpOptions::maxSteps.
     * Output and counters reflect the truncated prefix; the caller
     * decides whether that is a user error (runaway input program) or
     * a miscompiled-program symptom (transformed code diverging).
     */
    bool stepLimit = false;
    /** The run stopped at InterpOptions::budgetSteps (the typed
     *  resource budget, distinct from the maxSteps runaway guard). */
    bool budgetStop = false;
    /** The run stopped because InterpOptions::deadline expired. */
    bool deadlineStop = false;
    /** Any of the three truncation causes fired. */
    bool
    truncated() const
    {
        return stepLimit || budgetStop || deadlineStop;
    }
    /** Procedure executing when a truncated run stopped — the budget
     *  exhaustion's attribution hint; kNoProc on a complete run. */
    ir::ProcId stopProc = ir::kNoProc;

    /** @name Superblock statistics (Fig. 7)
     *  @{
     */
    uint64_t sbEntries = 0;          ///< dynamic superblock entries
    uint64_t sbBlocksExecuted = 0;   ///< sum of trace blocks reached
    uint64_t sbBlocksInSb = 0;       ///< sum of superblock sizes (blocks)
    uint64_t sbCompletions = 0;      ///< entries that ran to the end
    /** @} */

    /** Dynamic call counts per (caller, callee), for Pettis-Hansen. */
    std::map<std::pair<ir::ProcId, ir::ProcId>, uint64_t> callCounts;

    double
    sbAvgBlocksExecuted() const
    {
        return sbEntries ? double(sbBlocksExecuted) / double(sbEntries)
                         : 0.0;
    }
    double
    sbAvgBlocksInSuperblock() const
    {
        return sbEntries ? double(sbBlocksInSb) / double(sbEntries) : 0.0;
    }
};

/** Interpreter configuration. */
struct InterpOptions
{
    /** Stop the run after this many operations (runaway guard); the
     *  truncated result carries RunResult::stepLimit = true. */
    uint64_t maxSteps = kDefaultMaxSteps;
    /** Typed step budget (0 = none): exceeding it truncates the run
     *  with RunResult::budgetStop and a stopProc attribution.  Budgets
     *  at or above maxSteps defer to the runaway guard. */
    uint64_t budgetSteps = 0;
    /** Cooperative wall budget, polled every kDeadlineCheckStride
     *  steps; expiry truncates with RunResult::deadlineStop. */
    Deadline deadline;
    /** Code layout; required when an I-cache is attached. */
    const layout::CodeLayout *codeLayout = nullptr;
    /** Instruction cache; optional. */
    icache::ICache *cache = nullptr;
    /** Collect per-(caller,callee) dynamic call counts. */
    bool collectCallCounts = false;
};

/** Executes IR programs.  Stateless across run() calls. */
class Interpreter
{
  public:
    explicit Interpreter(const ir::Program &prog,
                         InterpOptions options = InterpOptions())
        : prog_(prog), opts_(options)
    {}

    /** Register an execution observer (not owned). */
    void addListener(TraceListener *listener)
    {
        listeners_.push_back(listener);
    }

    /** Execute the program on @p input and return the measurements. */
    RunResult run(const ProgramInput &input);

  private:
    const ir::Program &prog_;
    InterpOptions opts_;
    std::vector<TraceListener *> listeners_;
};

} // namespace pathsched::interp

#endif // PATHSCHED_INTERP_INTERPRETER_HPP
