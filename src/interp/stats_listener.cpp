#include "interp/stats_listener.hpp"

namespace pathsched::interp {

void
StatsListener::flush()
{
    if (registry_ == nullptr)
        return;
    registry_->addCounter(prefix_ + ".ops", ops_);
    registry_->addCounter(prefix_ + ".branches", branches_);
    registry_->addCounter(prefix_ + ".jumps", jumps_);
    registry_->addCounter(prefix_ + ".calls", calls_);
    registry_->addCounter(prefix_ + ".rets", rets_);
    registry_->addCounter(prefix_ + ".mem", mem_);
    registry_->addCounter(prefix_ + ".edges", edges_);
    registry_->addCounter(prefix_ + ".procEnters", procEnters_);
    registry_->addCounter(prefix_ + ".procExits", procExits_);
}

} // namespace pathsched::interp
