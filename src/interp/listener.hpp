/**
 * @file
 * Observation interface for program execution.
 *
 * The interpreter notifies listeners of procedure activations and of
 * every intra-procedural CFG edge it follows.  Edge and path profilers
 * are implemented as listeners, mirroring the paper's instrumentation
 * scheme where "different analysis routines" are linked into the
 * instrumented program (§3.1).
 */

#ifndef PATHSCHED_INTERP_LISTENER_HPP
#define PATHSCHED_INTERP_LISTENER_HPP

#include "ir/instruction.hpp"
#include "ir/types.hpp"

namespace pathsched::interp {

/** Callbacks fired during interpretation.  Default-ignores everything. */
class TraceListener
{
  public:
    virtual ~TraceListener() = default;

    /**
     * Opt into the per-operation onOp() callback.  The interpreter only
     * pays the dispatch cost in its hot loop when at least one attached
     * listener wants ops, so edge/path profilers (which don't) keep the
     * training run at full speed.
     */
    virtual bool wantsOps() const { return false; }

    /** One operation of opcode @p op executed inside @p proc.  Fired
     *  only for listeners whose wantsOps() returns true. */
    virtual void onOp(ir::ProcId proc, ir::Opcode op)
    {
        (void)proc;
        (void)op;
    }

    /** A new activation of @p proc began at its entry block. */
    virtual void onProcEnter(ir::ProcId proc) { (void)proc; }

    /** The current activation of @p proc returned. */
    virtual void onProcExit(ir::ProcId proc) { (void)proc; }

    /**
     * Control moved along the CFG edge @p from -> @p to inside the
     * current activation of @p proc.
     */
    virtual void
    onEdge(ir::ProcId proc, ir::BlockId from, ir::BlockId to)
    {
        (void)proc;
        (void)from;
        (void)to;
    }
};

} // namespace pathsched::interp

#endif // PATHSCHED_INTERP_LISTENER_HPP
