/**
 * @file
 * Observation interface for program execution.
 *
 * The interpreter notifies listeners of procedure activations and of
 * every intra-procedural CFG edge it follows.  Edge and path profilers
 * are implemented as listeners, mirroring the paper's instrumentation
 * scheme where "different analysis routines" are linked into the
 * instrumented program (§3.1).
 */

#ifndef PATHSCHED_INTERP_LISTENER_HPP
#define PATHSCHED_INTERP_LISTENER_HPP

#include "ir/types.hpp"

namespace pathsched::interp {

/** Callbacks fired during interpretation.  Default-ignores everything. */
class TraceListener
{
  public:
    virtual ~TraceListener() = default;

    /** A new activation of @p proc began at its entry block. */
    virtual void onProcEnter(ir::ProcId proc) { (void)proc; }

    /** The current activation of @p proc returned. */
    virtual void onProcExit(ir::ProcId proc) { (void)proc; }

    /**
     * Control moved along the CFG edge @p from -> @p to inside the
     * current activation of @p proc.
     */
    virtual void
    onEdge(ir::ProcId proc, ir::BlockId from, ir::BlockId to)
    {
        (void)proc;
        (void)from;
        (void)to;
    }
};

} // namespace pathsched::interp

#endif // PATHSCHED_INTERP_LISTENER_HPP
