/**
 * @file
 * Interpreter execution-statistics listener.
 *
 * A TraceListener that tallies dynamic behaviour — operations (split
 * by class), conditional branches, calls, CFG edges, procedure
 * activations — and publishes the tallies into an obs::StatRegistry
 * under a caller-chosen dotted prefix (e.g. "interp.P4.test").  This
 * is the interpreter's half of the observability layer: attach one
 * per run, call flush() after the run.
 */

#ifndef PATHSCHED_INTERP_STATS_LISTENER_HPP
#define PATHSCHED_INTERP_STATS_LISTENER_HPP

#include <string>

#include "interp/listener.hpp"
#include "obs/stats.hpp"

namespace pathsched::interp {

class StatsListener : public TraceListener
{
  public:
    /** Tallies publish to @p registry under "@p prefix.<name>". */
    StatsListener(obs::StatRegistry *registry, std::string prefix)
        : registry_(registry), prefix_(std::move(prefix))
    {}

    bool wantsOps() const override { return true; }

    void
    onOp(ir::ProcId proc, ir::Opcode op) override
    {
        (void)proc;
        ++ops_;
        switch (op) {
          case ir::Opcode::BrNz:
          case ir::Opcode::BrZ: ++branches_; break;
          case ir::Opcode::Jmp: ++jumps_; break;
          case ir::Opcode::Call: ++calls_; break;
          case ir::Opcode::Ret: ++rets_; break;
          case ir::Opcode::Ld:
          case ir::Opcode::LdSpec:
          case ir::Opcode::St: ++mem_; break;
          default: break;
        }
    }

    void onProcEnter(ir::ProcId proc) override
    {
        (void)proc;
        ++procEnters_;
    }

    void onProcExit(ir::ProcId proc) override
    {
        (void)proc;
        ++procExits_;
    }

    void
    onEdge(ir::ProcId proc, ir::BlockId from, ir::BlockId to) override
    {
        (void)proc;
        (void)from;
        (void)to;
        ++edges_;
    }

    /** Publish the tallies into the registry (accumulating). */
    void flush();

    uint64_t ops() const { return ops_; }
    uint64_t branches() const { return branches_; }
    uint64_t edges() const { return edges_; }

  private:
    obs::StatRegistry *registry_;
    std::string prefix_;
    uint64_t ops_ = 0;
    uint64_t branches_ = 0;
    uint64_t jumps_ = 0;
    uint64_t calls_ = 0;
    uint64_t rets_ = 0;
    uint64_t mem_ = 0;
    uint64_t edges_ = 0;
    uint64_t procEnters_ = 0;
    uint64_t procExits_ = 0;
};

} // namespace pathsched::interp

#endif // PATHSCHED_INTERP_STATS_LISTENER_HPP
