#include "machine/machine.hpp"

namespace pathsched::machine {

MachineModel
MachineModel::unitLatency()
{
    MachineModel m;
    m.latency.fill(1);
    return m;
}

MachineModel
MachineModel::realisticLatency()
{
    MachineModel m;
    m.latency.fill(1);
    m.latency[size_t(ir::Opcode::Ld)] = 3;
    m.latency[size_t(ir::Opcode::LdSpec)] = 3;
    m.latency[size_t(ir::Opcode::Mul)] = 3;
    m.latency[size_t(ir::Opcode::Div)] = 8;
    m.latency[size_t(ir::Opcode::Rem)] = 8;
    return m;
}

} // namespace pathsched::machine
