/**
 * @file
 * Experimental machine model (§3.2 of the paper).
 *
 * A very powerful VLIW based on the Alpha ISA: 8 universal functional
 * units, at most one control instruction per cycle, a 128-entry integer
 * register file, and unit latencies by default.  A "realistic latency"
 * variant is provided for the ablation the paper mentions ("we have
 * also generated results with more realistic instruction latencies").
 */

#ifndef PATHSCHED_MACHINE_MACHINE_HPP
#define PATHSCHED_MACHINE_MACHINE_HPP

#include <array>
#include <cstdint>

#include "ir/instruction.hpp"

namespace pathsched::machine {

/** Issue, latency and register-file parameters of the target. */
struct MachineModel
{
    /** Operations issued per cycle. */
    uint32_t issueWidth = 8;
    /** Control-slot operations (branch/jump/ret/call) per cycle. */
    uint32_t controlPerCycle = 1;
    /** Architected integer registers. */
    uint32_t numRegs = 128;
    /** Result latency per opcode, in cycles (>= 1). */
    std::array<uint32_t, ir::kNumOpcodes> latency{};

    uint32_t
    latencyOf(ir::Opcode op) const
    {
        return latency[size_t(op)];
    }

    /** The paper's primary model: every operation completes in 1 cycle. */
    static MachineModel unitLatency();

    /**
     * Non-unit latencies: loads 3, multiplies 3, divides 8, the rest 1.
     * Used by the latency ablation (bench_ablation_latency).
     */
    static MachineModel realisticLatency();
};

} // namespace pathsched::machine

#endif // PATHSCHED_MACHINE_MACHINE_HPP
