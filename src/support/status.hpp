/**
 * @file
 * Typed, recoverable errors for the pipeline's fault-tolerant paths.
 *
 * The library's failure contract has three tiers (see
 * docs/robustness.md and support/logging.hpp):
 *
 *  - panic(): an internal pathsched bug; aborts.
 *  - fatal(): an unrecoverable user/configuration error; exits.
 *  - Status / Expected<T>: a *recoverable* per-item failure — a
 *    malformed profile, a superblock invariant break, a scheduling
 *    failure — that a caller can quarantine (e.g. degrade one
 *    procedure to the BB baseline) instead of killing the process.
 *
 * No C++ exceptions are used anywhere in the library; Status is the
 * only error channel for recoverable failures.
 */

#ifndef PATHSCHED_SUPPORT_STATUS_HPP
#define PATHSCHED_SUPPORT_STATUS_HPP

#include <string>
#include <utility>

#include "support/logging.hpp"

namespace pathsched {

/** The error taxonomy of the recoverable pipeline. */
enum class ErrorKind : uint8_t
{
    BadProfile,     ///< malformed or out-of-range profile data
    VerifyFailed,   ///< IR structural verification found violations
    ScheduleFailed, ///< compaction/scheduling produced no valid schedule
    OutputMismatch, ///< transformed program output diverged from original
    StepLimit,      ///< interpreter exceeded its step ceiling
    Injected,       ///< forced by the fault-injection harness
    DeadlineExceeded, ///< a wall-clock budget (Deadline) expired
    BudgetExceeded,   ///< a resource budget (ops, steps, growth) ran out
    ProfileCorrupt, ///< a profile failed integrity/consistency checks
    ProfileStale,   ///< a profile was collected against a different CFG
    IoError,        ///< a durable-path I/O operation failed (real or injected)
    Unavailable,    ///< service temporarily degraded; retry with backoff
};

/** Every ErrorKind, in declaration order (for taxonomy iteration). */
inline constexpr ErrorKind kAllErrorKinds[] = {
    ErrorKind::BadProfile,       ErrorKind::VerifyFailed,
    ErrorKind::ScheduleFailed,   ErrorKind::OutputMismatch,
    ErrorKind::StepLimit,        ErrorKind::Injected,
    ErrorKind::DeadlineExceeded, ErrorKind::BudgetExceeded,
    ErrorKind::ProfileCorrupt,   ErrorKind::ProfileStale,
    ErrorKind::IoError,          ErrorKind::Unavailable,
};

/** Stable display name, e.g. "VerifyFailed". */
const char *errorKindName(ErrorKind kind);

/** Parse a spec-file kind token ("verify", "profile", "schedule",
 *  "output", "steplimit", "injected", "deadline", "budget", "corrupt",
 *  "stale", "io", "unavailable" or an errorKindName); false on an
 *  unknown token. */
bool parseErrorKind(const std::string &token, ErrorKind &out);

/** Success, or one classified error with a human-readable message. */
class [[nodiscard]] Status
{
  public:
    /** Default-constructed Status is success. */
    Status() = default;

    static Status
    error(ErrorKind kind, std::string message)
    {
        Status s;
        s.failed_ = true;
        s.kind_ = kind;
        s.message_ = std::move(message);
        return s;
    }

    bool ok() const { return !failed_; }

    ErrorKind
    kind() const
    {
        ps_assert_msg(failed_, "Status::kind() on an OK status");
        return kind_;
    }

    const std::string &message() const { return message_; }

    /** "OK" or "<kind>: <message>". */
    std::string toString() const;

  private:
    bool failed_ = false;
    ErrorKind kind_ = ErrorKind::Injected;
    std::string message_;
};

/**
 * A value of type @p T or a non-OK Status.  T must be
 * default-constructible (all pathsched stat/result structs are).
 */
template <typename T>
class [[nodiscard]] Expected
{
  public:
    Expected(T value) : value_(std::move(value)) {}

    Expected(Status status) : status_(std::move(status))
    {
        ps_assert_msg(!status_.ok(),
                      "Expected constructed from an OK status");
    }

    bool ok() const { return status_.ok(); }

    const Status &status() const { return status_; }

    T &
    value()
    {
        ps_assert_msg(ok(), "Expected::value() on error: %s",
                      status_.message().c_str());
        return value_;
    }

    const T &
    value() const
    {
        ps_assert_msg(ok(), "Expected::value() on error: %s",
                      status_.message().c_str());
        return value_;
    }

    T *operator->() { return &value(); }
    const T *operator->() const { return &value(); }

  private:
    Status status_;
    T value_{};
};

} // namespace pathsched

#endif // PATHSCHED_SUPPORT_STATUS_HPP
