#include "support/status.hpp"

namespace pathsched {

const char *
errorKindName(ErrorKind kind)
{
    switch (kind) {
      case ErrorKind::BadProfile: return "BadProfile";
      case ErrorKind::VerifyFailed: return "VerifyFailed";
      case ErrorKind::ScheduleFailed: return "ScheduleFailed";
      case ErrorKind::OutputMismatch: return "OutputMismatch";
      case ErrorKind::StepLimit: return "StepLimit";
      case ErrorKind::Injected: return "Injected";
      case ErrorKind::DeadlineExceeded: return "DeadlineExceeded";
      case ErrorKind::BudgetExceeded: return "BudgetExceeded";
      case ErrorKind::ProfileCorrupt: return "ProfileCorrupt";
      case ErrorKind::ProfileStale: return "ProfileStale";
      case ErrorKind::IoError: return "IoError";
      case ErrorKind::Unavailable: return "Unavailable";
    }
    return "<bad>";
}

bool
parseErrorKind(const std::string &token, ErrorKind &out)
{
    if (token == "profile" || token == "BadProfile")
        out = ErrorKind::BadProfile;
    else if (token == "verify" || token == "VerifyFailed")
        out = ErrorKind::VerifyFailed;
    else if (token == "schedule" || token == "ScheduleFailed")
        out = ErrorKind::ScheduleFailed;
    else if (token == "output" || token == "OutputMismatch")
        out = ErrorKind::OutputMismatch;
    else if (token == "steplimit" || token == "StepLimit")
        out = ErrorKind::StepLimit;
    else if (token == "injected" || token == "Injected")
        out = ErrorKind::Injected;
    else if (token == "deadline" || token == "DeadlineExceeded")
        out = ErrorKind::DeadlineExceeded;
    else if (token == "budget" || token == "BudgetExceeded")
        out = ErrorKind::BudgetExceeded;
    else if (token == "corrupt" || token == "ProfileCorrupt")
        out = ErrorKind::ProfileCorrupt;
    else if (token == "stale" || token == "ProfileStale")
        out = ErrorKind::ProfileStale;
    else if (token == "io" || token == "IoError")
        out = ErrorKind::IoError;
    else if (token == "unavailable" || token == "Unavailable")
        out = ErrorKind::Unavailable;
    else
        return false;
    return true;
}

std::string
Status::toString() const
{
    if (ok())
        return "OK";
    std::string s = errorKindName(kind_);
    if (!message_.empty()) {
        s += ": ";
        s += message_;
    }
    return s;
}

} // namespace pathsched
