#include "support/faultinject.hpp"

#include <charconv>

#include "support/strutil.hpp"

namespace pathsched {

namespace {

/** Split @p s on @p sep, dropping empty pieces. */
std::vector<std::string>
splitOn(const std::string &s, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= s.size()) {
        size_t end = s.find(sep, start);
        if (end == std::string::npos)
            end = s.size();
        if (end > start)
            out.push_back(s.substr(start, end - start));
        start = end + 1;
    }
    return out;
}

bool
parseU64(const std::string &s, uint64_t &out)
{
    const char *first = s.data();
    const char *last = s.data() + s.size();
    auto [ptr, ec] = std::from_chars(first, last, out);
    return ec == std::errc() && ptr == last && !s.empty();
}

} // namespace

bool
FaultInjector::parse(const std::string &spec, std::string &error)
{
    std::vector<FaultSpec> parsed;
    for (const std::string &one : splitOn(spec, ';')) {
        FaultSpec f;
        for (const std::string &field : splitOn(one, ',')) {
            const size_t eq = field.find('=');
            if (eq == std::string::npos) {
                error = strfmt("fault field '%s' lacks '='",
                               field.c_str());
                return false;
            }
            const std::string key = field.substr(0, eq);
            const std::string val = field.substr(eq + 1);
            if (key == "stage") {
                f.stage = val;
            } else if (key == "proc") {
                if (val == "*") {
                    f.proc = FaultSpec::kAnyProc;
                } else {
                    uint64_t id;
                    if (!parseU64(val, id) || id >= FaultSpec::kAnyProc) {
                        error = strfmt("bad proc id '%s'", val.c_str());
                        return false;
                    }
                    f.proc = uint32_t(id);
                }
            } else if (key == "kind") {
                if (!parseErrorKind(val, f.kind)) {
                    error = strfmt("unknown error kind '%s'",
                                   val.c_str());
                    return false;
                }
            } else if (key == "count") {
                if (!parseU64(val, f.maxFires) || f.maxFires == 0) {
                    error = strfmt("bad fire count '%s'", val.c_str());
                    return false;
                }
            } else if (key == "prob") {
                char *end = nullptr;
                f.prob = std::strtod(val.c_str(), &end);
                if (end != val.c_str() + val.size() || f.prob < 0.0 ||
                    f.prob > 1.0) {
                    error = strfmt("bad probability '%s'", val.c_str());
                    return false;
                }
            } else {
                error = strfmt("unknown fault field '%s'", key.c_str());
                return false;
            }
        }
        if (f.stage.empty()) {
            error = "fault spec lacks a stage= field";
            return false;
        }
        parsed.push_back(std::move(f));
    }
    if (parsed.empty()) {
        error = "empty fault spec";
        return false;
    }
    for (FaultSpec &f : parsed)
        add(std::move(f));
    return true;
}

void
FaultInjector::add(FaultSpec fault)
{
    faults_.push_back({std::move(fault), 0});
}

std::optional<ErrorKind>
FaultInjector::fire(const std::string &stage, uint32_t proc)
{
    for (Armed &a : faults_) {
        if (a.spec.stage != stage)
            continue;
        if (a.spec.proc != FaultSpec::kAnyProc && a.spec.proc != proc)
            continue;
        if (a.fired >= a.spec.maxFires)
            continue;
        if (a.spec.prob < 1.0 && !rng_.chance(a.spec.prob))
            continue;
        ++a.fired;
        ++totalFired_;
        return a.spec.kind;
    }
    return std::nullopt;
}

} // namespace pathsched
