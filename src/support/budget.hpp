/**
 * @file
 * Resource governance: wall-clock deadlines and work budgets.
 *
 * PR 2's quarantine machinery makes the pipeline survive *bad* work; a
 * pathological enlargement decision, a hung scheduling loop, or a
 * runaway interpreter run is *unbounded* work, which quarantine alone
 * cannot catch.  This header adds the missing tier (docs/robustness.md
 * "The budget tier"):
 *
 *  - Deadline: a steady-clock wall budget, checked cooperatively.  An
 *    inactive (default) deadline never expires and costs one branch.
 *  - ResourceBudget: the per-run budget bundle — a deadline plus
 *    per-procedure op caps for formation growth, compaction, and
 *    register allocation, and a per-run interpreter step budget.
 *  - BudgetMeter: a cheap per-(stage, procedure) work meter whose
 *    checkpoint() returns a typed Status (BudgetExceeded /
 *    DeadlineExceeded) the caller propagates like any other
 *    recoverable failure — the pipeline quarantines that procedure to
 *    its BB body instead of aborting the run.
 *
 * Everything here is cooperative and advisory: a null / unlimited
 * budget makes every check a no-op, so budget-free runs are
 * bit-identical to builds without this layer.
 */

#ifndef PATHSCHED_SUPPORT_BUDGET_HPP
#define PATHSCHED_SUPPORT_BUDGET_HPP

#include <chrono>
#include <cstdint>

#include "support/status.hpp"

namespace pathsched {

/** A steady-clock wall budget.  Default-constructed = never expires. */
class Deadline
{
  public:
    using Clock = std::chrono::steady_clock;

    Deadline() = default;

    /** The inactive deadline (never expires). */
    static Deadline
    never()
    {
        return Deadline();
    }

    /** Expires @p ms milliseconds from now. */
    static Deadline
    afterMs(uint64_t ms)
    {
        Deadline d;
        d.active_ = true;
        d.at_ = Clock::now() + std::chrono::milliseconds(ms);
        return d;
    }

    bool active() const { return active_; }

    /** One clock read when active; constant false when inactive. */
    bool
    expired() const
    {
        return active_ && Clock::now() >= at_;
    }

    /** Milliseconds until expiry, clamped at 0; 0 when inactive. */
    double remainingMs() const;

  private:
    bool active_ = false;
    Clock::time_point at_{};
};

/**
 * Everything bounded about one pipeline run.  A zero op/step field
 * means "unlimited"; the default instance bounds nothing.
 *
 * The op budgets are *per procedure per stage* — exhaustion is a
 * recoverable, attributable failure of that one procedure, which the
 * pipeline degrades to the BB baseline (the quarantine fallback itself
 * always runs budget-free, so a blown budget can never cascade into a
 * panic).  The deadline and the interpreter step budget are global to
 * the run; see docs/robustness.md for how the pipeline reports them.
 */
struct ResourceBudget
{
    /** Wall budget for the whole pipeline run (cooperative). */
    Deadline deadline;
    /** Ops formation may *add* to one procedure (tail duplication plus
     *  enlargement); the paper's unroll/size caps bound one trace, this
     *  bounds the procedure.  0 = unlimited. */
    uint64_t formGrowthOps = 0;
    /** Ops the compact stage may process for one procedure. */
    uint64_t compactOps = 0;
    /** Ops register allocation may process for one procedure. */
    uint64_t regallocOps = 0;
    /** Steps one interpreter run may execute (typed, unlike the
     *  InterpOptions::maxSteps runaway guard). */
    uint64_t interpSteps = 0;

    bool
    unlimited() const
    {
        return !deadline.active() && formGrowthOps == 0 &&
               compactOps == 0 && regallocOps == 0 && interpSteps == 0;
    }
};

/**
 * Cooperative work meter for one (stage, procedure) pass.  The pass
 * calls checkpoint(units) as it consumes work (one unit = one IR op
 * processed); a non-OK return means the op cap or the deadline was
 * exceeded and the pass must stop and propagate the status (the
 * partially-rewritten procedure is restored by the pipeline's
 * quarantine, per the existing per-procedure contract).
 *
 * A null budget disables the meter entirely.
 */
class BudgetMeter
{
  public:
    /** @p opCap is the per-stage cap the caller selected from the
     *  budget (0 = unlimited); @p stage names the pass in messages. */
    BudgetMeter(const ResourceBudget *budget, const char *stage,
                uint64_t opCap)
        : budget_(budget), stage_(stage), cap_(opCap)
    {}

    /** Charge @p units of work; non-OK on exhaustion. */
    Status checkpoint(uint64_t units = 1);

    uint64_t used() const { return used_; }

  private:
    const ResourceBudget *budget_;
    const char *stage_;
    uint64_t cap_ = 0;
    uint64_t used_ = 0;
};

/** Non-OK DeadlineExceeded when @p budget (nullable) has an expired
 *  deadline; the cheap entry check passes run before any work. */
Status deadlineStatus(const ResourceBudget *budget, const char *stage);

} // namespace pathsched

#endif // PATHSCHED_SUPPORT_BUDGET_HPP
