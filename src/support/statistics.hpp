/**
 * @file
 * Small statistics helpers used by the experiment harness.
 */

#ifndef PATHSCHED_SUPPORT_STATISTICS_HPP
#define PATHSCHED_SUPPORT_STATISTICS_HPP

#include <cstdint>
#include <vector>

namespace pathsched {

/**
 * Running mean / min / max / sum / variance accumulator.
 *
 * Variance uses Welford's online algorithm, so the accumulator is
 * numerically stable for long sample streams.  Every query is
 * well-defined on an empty accumulator: count() and sum() are 0 and
 * mean(), min(), max(), variance() and stddev() all return 0.0.
 */
class RunningStat
{
  public:
    /** Fold one sample into the accumulator. */
    void add(double x);

    /**
     * Fold another accumulator in (Chan's parallel combination, with
     * the merged mean derived canonically from the exact sums).  For
     * integer-valued sample streams (profile counts) count, sum, min,
     * max and mean are bit-identical under any shard split or merge
     * order; m2 (variance) is associative up to rounding only.
     */
    void merge(const RunningStat &other);

    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return mean_; }
    double min() const;
    double max() const;
    /** Sample variance (n-1 denominator); 0 for fewer than 2 samples. */
    double variance() const;
    /** sqrt(variance()). */
    double stddev() const;

  private:
    uint64_t count_ = 0;
    double sum_ = 0;
    double mean_ = 0;
    double m2_ = 0; ///< sum of squared deviations from the running mean
    double min_ = 0;
    double max_ = 0;
};

/** Arithmetic mean of a sample vector; 0 for an empty vector. */
double mean(const std::vector<double> &xs);

/** Geometric mean of a positive sample vector; 0 for an empty vector. */
double geomean(const std::vector<double> &xs);

} // namespace pathsched

#endif // PATHSCHED_SUPPORT_STATISTICS_HPP
