/**
 * @file
 * Small statistics helpers used by the experiment harness.
 */

#ifndef PATHSCHED_SUPPORT_STATISTICS_HPP
#define PATHSCHED_SUPPORT_STATISTICS_HPP

#include <cstdint>
#include <vector>

namespace pathsched {

/** Running mean / min / max / sum accumulator. */
class RunningStat
{
  public:
    /** Fold one sample into the accumulator. */
    void add(double x);

    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const;
    double min() const;
    double max() const;

  private:
    uint64_t count_ = 0;
    double sum_ = 0;
    double min_ = 0;
    double max_ = 0;
};

/** Arithmetic mean of a sample vector; 0 for an empty vector. */
double mean(const std::vector<double> &xs);

/** Geometric mean of a positive sample vector; 0 for an empty vector. */
double geomean(const std::vector<double> &xs);

} // namespace pathsched

#endif // PATHSCHED_SUPPORT_STATISTICS_HPP
