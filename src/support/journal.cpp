#include "support/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include "support/hash.hpp"
#include "support/strutil.hpp"

namespace pathsched {

std::string
withCrc(const std::string &json)
{
    const std::string rest = json.substr(1); // drop the opening '{'
    return strfmt("{\"crc\":\"%08x\",", crc32(rest.data(), rest.size())) +
           rest;
}

bool
crcLineOk(const std::string &line)
{
    const char prefix[] = "{\"crc\":\"";
    const size_t plen = sizeof prefix - 1; // 8
    if (line.compare(0, plen, prefix) != 0)
        return true; // legacy line: nothing to verify
    // {"crc":"xxxxxxxx",REST  — 8 hex digits, then '",'.
    if (line.size() < plen + 10)
        return false;
    uint32_t declared = 0;
    for (size_t i = plen; i < plen + 8; ++i) {
        const char c = line[i];
        uint32_t d;
        if (c >= '0' && c <= '9')
            d = uint32_t(c - '0');
        else if (c >= 'a' && c <= 'f')
            d = uint32_t(c - 'a' + 10);
        else
            return false;
        declared = (declared << 4) | d;
    }
    if (line.compare(plen + 8, 2, "\",") != 0)
        return false;
    const size_t rest = plen + 10;
    return crc32(line.data() + rest, line.size() - rest) == declared;
}

bool
jsonField(const std::string &line, const std::string &key,
          std::string &out)
{
    const std::string needle = "\"" + key + "\":";
    const size_t pos = line.find(needle);
    if (pos == std::string::npos)
        return false;
    size_t v = pos + needle.size();
    if (v >= line.size())
        return false;
    if (line[v] == '"') {
        const size_t end = line.find('"', v + 1);
        if (end == std::string::npos)
            return false;
        out = line.substr(v + 1, end - v - 1);
        return true;
    }
    size_t end = v;
    while (end < line.size() && line[end] != ',' && line[end] != '}')
        ++end;
    out = line.substr(v, end - v);
    return true;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out += c;
    }
    return out;
}

JsonlJournal::JsonlJournal(const std::string &path, Vio *vio,
                           const std::string &label)
    : path_(path), label_(label),
      vio_(vio != nullptr ? vio : &Vio::system())
{}

JsonlJournal::~JsonlJournal()
{
    if (fd_ >= 0)
        ::close(fd_);
}

Status
JsonlJournal::open()
{
    Expected<int> fd = vio_->openFile(label_.c_str(), path_,
                                      O_WRONLY | O_CREAT | O_APPEND);
    if (!fd.ok())
        return fd.status();
    fd_ = fd.value();
    return Status();
}

Status
JsonlJournal::line(const std::string &json)
{
    // Each line carries its own CRC so a torn write (power loss,
    // SIGKILL mid-write) is detectable on resume.
    std::string checked = withCrc(json);
    checked += '\n';
    if (Status st = vio_->writeAll(label_.c_str(), fd_, checked.data(),
                                   checked.size(), path_);
        !st.ok())
        return st;
    // Survive SIGKILL of the writer: the line must be on disk before
    // the recorded side effects are considered durable.
    return vio_->fsyncFile(label_.c_str(), fd_, path_);
}

} // namespace pathsched
