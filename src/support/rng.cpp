#include "support/rng.hpp"

#include "support/logging.hpp"

namespace pathsched {

namespace {

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

/** SplitMix64 step, used to expand the seed into the full state. */
uint64_t
splitmix(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t x = seed;
    for (auto &s : state_)
        s = splitmix(x);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

uint64_t
Rng::below(uint64_t bound)
{
    ps_assert(bound >= 1);
    // Rejection sampling to avoid modulo bias.
    const uint64_t limit = ~uint64_t(0) - ~uint64_t(0) % bound;
    uint64_t v = next();
    while (v >= limit)
        v = next();
    return v % bound;
}

int64_t
Rng::range(int64_t lo, int64_t hi)
{
    ps_assert(lo <= hi);
    return lo + int64_t(below(uint64_t(hi - lo) + 1));
}

double
Rng::uniform()
{
    return double(next() >> 11) * (1.0 / 9007199254740992.0);
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

} // namespace pathsched
