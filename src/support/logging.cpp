#include "support/logging.hpp"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace pathsched {

namespace {

void
vreport(const char *tag, const char *file, int line, const char *fmt,
        va_list ap)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, ap);
    if (file)
        std::fprintf(stderr, " @ %s:%d", file, line);
    std::fprintf(stderr, "\n");
    std::fflush(stderr);
}

int g_panic_exit_code = -1;

} // namespace

void
setPanicExitCode(int code)
{
    g_panic_exit_code = code;
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("panic", file, line, fmt, ap);
    va_end(ap);
    if (g_panic_exit_code >= 0)
        std::_Exit(g_panic_exit_code);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("fatal", file, line, fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("warn", nullptr, 0, fmt, ap);
    va_end(ap);
}

void
informImpl(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("info", nullptr, 0, fmt, ap);
    va_end(ap);
}

} // namespace pathsched
