#include "support/strutil.hpp"

#include <cstdarg>
#include <cstdio>

namespace pathsched {

std::string
strfmt(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    const int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out(size_t(n), '\0');
    std::vsnprintf(out.data(), size_t(n) + 1, fmt, ap2);
    va_end(ap2);
    return out;
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::string
withCommas(uint64_t value)
{
    std::string digits = std::to_string(value);
    std::string out;
    const size_t n = digits.size();
    for (size_t i = 0; i < n; ++i) {
        if (i && (n - i) % 3 == 0)
            out += ',';
        out += digits[i];
    }
    return out;
}

std::string
padLeft(const std::string &s, size_t width)
{
    return s.size() >= width ? s : std::string(width - s.size(), ' ') + s;
}

std::string
padRight(const std::string &s, size_t width)
{
    return s.size() >= width ? s : s + std::string(width - s.size(), ' ');
}

} // namespace pathsched
