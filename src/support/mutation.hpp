/**
 * @file
 * Deliberate-bug ("mutation") switches for testing the test harness.
 *
 * The differential fuzzing oracle (gen/oracle.hpp) is only trustworthy
 * if a real scheduling bug would actually trip it.  This module lets a
 * test *plant* a known bug in a pass — a mutation — and assert that the
 * fuzz driver catches, classifies and reduces it.  Production runs
 * never arm mutations; the hook is a single armed-set lookup that is
 * false for every name unless PATHSCHED_MUTATION (a comma-separated
 * name list) was set in the environment at first query, or a test
 * armed one programmatically.
 *
 * Known mutation points (grep for mutationArmed to enumerate):
 *   compact-drop-memdep   depgraph.cpp drops store->load dependences in
 *                         multi-exit (superblock) blocks, so compaction
 *                         can hoist a load above an aliasing store.
 *                         Single-exit blocks are untouched, which keeps
 *                         the BB fallback correct: the bug surfaces as
 *                         a typed output-compare degradation, never a
 *                         panic.
 */

#ifndef PATHSCHED_SUPPORT_MUTATION_HPP
#define PATHSCHED_SUPPORT_MUTATION_HPP

#include <string>
#include <string_view>

namespace pathsched {

/** True when mutation @p name is armed (env or test).  Thread-safe. */
bool mutationArmed(std::string_view name);

/**
 * Arm exactly the mutations in @p csv (comma-separated; "" disarms
 * all), overriding the environment.  Test-only; not safe to call while
 * pipeline worker threads are running.
 */
void setMutationsForTest(const std::string &csv);

/** RAII arm/disarm for tests. */
class ScopedMutation
{
  public:
    explicit ScopedMutation(const std::string &csv)
    {
        setMutationsForTest(csv);
    }
    ~ScopedMutation() { setMutationsForTest(""); }
    ScopedMutation(const ScopedMutation &) = delete;
    ScopedMutation &operator=(const ScopedMutation &) = delete;
};

} // namespace pathsched

#endif // PATHSCHED_SUPPORT_MUTATION_HPP
