/**
 * @file
 * String formatting helpers for table-style report output.
 */

#ifndef PATHSCHED_SUPPORT_STRUTIL_HPP
#define PATHSCHED_SUPPORT_STRUTIL_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace pathsched {

/** printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Join the elements of @p parts with @p sep. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

/** Render a count with thousands separators, e.g. 1234567 -> "1,234,567". */
std::string withCommas(uint64_t value);

/** Left-pad @p s with spaces to at least @p width characters. */
std::string padLeft(const std::string &s, size_t width);

/** Right-pad @p s with spaces to at least @p width characters. */
std::string padRight(const std::string &s, size_t width);

} // namespace pathsched

#endif // PATHSCHED_SUPPORT_STRUTIL_HPP
