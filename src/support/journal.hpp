/**
 * @file
 * Crash-safe JSONL journaling shared by the batch and fuzz drivers.
 *
 * A journal is an append-only file of one JSON object per line.  Each
 * line is prefixed with a CRC-32 over the rest of the line
 * ({"crc":"xxxxxxxx",...}), written and fsync'd as a unit, so a torn
 * write — power loss, SIGKILL mid-write, a hostile disk — is detected
 * on replay instead of trusted or fatal.  Writes go through the vio
 * seam (support/vio.hpp), so both the write and the fsync results are
 * typed and disk faults are injectable with --io-inject.
 *
 * The helpers (withCrc / crcLineOk / jsonField / jsonEscape) are also
 * usable standalone by readers that replay a journal.  Lines without a
 * leading crc field (older builds) pass verification unverified — the
 * format is additive.
 */

#ifndef PATHSCHED_SUPPORT_JOURNAL_HPP
#define PATHSCHED_SUPPORT_JOURNAL_HPP

#include <string>

#include "support/status.hpp"
#include "support/vio.hpp"

namespace pathsched {

/**
 * Prefix a JSON object with a CRC over the rest of the line:
 * {"event":...}  ->  {"crc":"xxxxxxxx","event":...}
 * The CRC covers every byte after the crc field's comma.
 */
std::string withCrc(const std::string &json);

/**
 * Check one journal line's CRC.  Lines without a leading crc field
 * pass unverified.
 */
bool crcLineOk(const std::string &line);

/** Minimal JSONL value scan: "key":"value" or "key":number. */
bool jsonField(const std::string &line, const std::string &key,
               std::string &out);

/** Escape '"', '\\' and newlines for embedding in a JSON string. */
std::string jsonEscape(const std::string &s);

/**
 * Append-only, crash-safe journal: every line() call writes one
 * CRC-prefixed line and fsyncs it before returning, through the vio
 * seam under @p label (default "journal") so hostile disks are
 * injectable.  A non-OK result from line() means the line may not be
 * on disk — the caller must stop recording side effects.
 */
class JsonlJournal
{
  public:
    /** @p vio may be null (the real filesystem is used). */
    JsonlJournal(const std::string &path, Vio *vio,
                 const std::string &label = "journal");
    ~JsonlJournal();

    JsonlJournal(const JsonlJournal &) = delete;
    JsonlJournal &operator=(const JsonlJournal &) = delete;

    /** Open (create/append) the journal file.  Typed failure. */
    [[nodiscard]] Status open();

    /** Append one line durably (see the class comment). */
    [[nodiscard]] Status line(const std::string &json);

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::string label_;
    Vio *vio_;
    int fd_ = -1;
};

} // namespace pathsched

#endif // PATHSCHED_SUPPORT_JOURNAL_HPP
