/**
 * @file
 * Virtual I/O seam for every durable-write path.
 *
 * The durability story of the serve/batch layers (WAL, snapshots,
 * stage-cache disk tier, batch journal, schedule/status outputs) rests
 * on a handful of syscalls: open, write, fsync, rename, close.  Real
 * disks fail — ENOSPC, EIO, torn writes, fsync that lies — and nothing
 * exercised those paths before this seam existed.  Vio routes each of
 * those syscalls through one choke point with typed Status results and
 * an optional seeded, deterministic fault injector, extending the
 * PR-2 stage-boundary fault grammar down to the I/O layer.
 *
 * A default-constructed Vio is a pure passthrough: every op is the
 * underlying syscall plus errno-to-Status translation, no RNG, no
 * counters on the hot path beyond one armed-check.  Disarmed behaviour
 * is byte-identical to calling the syscalls directly.
 *
 * Spec grammar (the CLI's --io-inject flag): faults separated by ';',
 * fields within a fault by ','.
 *
 *   path=wal,op=fsync,kind=eio,count=2
 *
 *   path   logical label of the durable path being written, or '*'
 *          for all (default '*').  The in-tree labels:
 *            wal       WAL segment appends (serve/wal.cpp)
 *            snap      snapshot temp-file writes (serve/wal.cpp)
 *            dir       state-directory fsyncs (serve/wal.cpp)
 *            cache     stage-cache disk tier (pipeline/cache.cpp)
 *            journal   batch-runner journal (tools/pathsched_batch)
 *            schedule  schedule blob output (serve/server.cpp)
 *            status    status.json output (serve/server.cpp)
 *   op     open | write | fsync | rename | close; defaults from the
 *          kind (enospc/short-write -> write, fsync-fail -> fsync,
 *          rename-fail -> rename, eio -> any op)
 *   kind   (required) enospc | eio | short-write | fsync-fail |
 *          rename-fail
 *   count  maximum number of times this fault fires (default
 *          unlimited)
 *   nth    fire only on the Nth matching query, 1-based (default 0 =
 *          every matching query)
 *   prob   firing probability from the seeded RNG (default 1.0)
 *
 * `short-write` is special: it really writes a prefix of the buffer to
 * the fd before failing, so recovery code faces a genuine torn tail,
 * not a clean no-op.
 *
 * Thread safety: all ops may be called concurrently (the stage cache
 * writes from executor threads); injector state is mutex-guarded.
 */

#ifndef PATHSCHED_SUPPORT_VIO_HPP
#define PATHSCHED_SUPPORT_VIO_HPP

#include <sys/types.h>

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "support/rng.hpp"
#include "support/status.hpp"

namespace pathsched {

/** Injected I/O failure flavours (the grammar's `kind=`). */
enum class IoFaultKind : uint8_t
{
    Enospc,     ///< ENOSPC from write/open — disk full
    Eio,        ///< EIO from whichever op matched — media error
    ShortWrite, ///< write persists a prefix, then fails (torn tail)
    FsyncFail,  ///< EIO from fsync — "fsync that lies", then errors
    RenameFail, ///< EIO from rename — atomic publish failed
};

/** Stable grammar token, e.g. "short-write". */
const char *ioFaultKindName(IoFaultKind kind);

/** One armed I/O fault. */
struct IoFaultSpec
{
    std::string path = "*"; ///< logical label ('*' = all)
    std::string op;         ///< open|write|fsync|rename|close ("" = by kind)
    IoFaultKind kind = IoFaultKind::Eio;
    uint64_t maxFires = UINT64_MAX;
    uint64_t nth = 0;       ///< fire only on the Nth matching query (0 = any)
    double prob = 1.0;      ///< per-query firing probability
};

/**
 * The virtual I/O seam.  Durable-path writers call these instead of
 * raw syscalls; a passthrough Vio adds only errno translation, an
 * armed one deterministically injects the configured faults.
 */
class Vio
{
  public:
    explicit Vio(uint64_t seed = 0) : rng_(seed) {}

    /** Parse @p spec (see file comment) and arm its faults, in
     *  addition to any already armed.  False + @p error on bad spec. */
    bool parseFaults(const std::string &spec, std::string &error);

    /** Arm @p fault directly. */
    void addFault(IoFaultSpec fault);

    /** Any fault armed?  False for the production passthrough. */
    bool armed() const;

    /** Total injected failures so far. */
    uint64_t faultsFired() const;

    /**
     * Shared passthrough instance.  Callers that accept a `Vio *`
     * default to this when handed nullptr, so production code paths
     * never test for null at each syscall site.
     */
    static Vio &system();

    /** @name Ops.  @p label is the logical durable-path label used for
     *  fault matching; @p path is the filesystem path (messages).
     *  All return ErrorKind::IoError on failure, real or injected.
     *  @{ */

    /** open(2); returns the fd. */
    Expected<int> openFile(const char *label, const std::string &path,
                           int flags, mode_t mode = 0644);

    /** Write all @p size bytes to @p fd, retrying EINTR/partials. */
    Status writeAll(const char *label, int fd, const void *data,
                    size_t size, const std::string &path);

    /** fsync(2) on a file fd. */
    Status fsyncFile(const char *label, int fd, const std::string &path);

    /** Open + fsync + close a directory (publish metadata). */
    Status fsyncDir(const char *label, const std::string &dir);

    /** rename(2). */
    Status renameFile(const char *label, const std::string &from,
                      const std::string &to);

    /** close(2); EINTR counts as closed (POSIX leaves the fd gone). */
    Status closeFile(const char *label, int fd, const std::string &path);

    /** @} */

  private:
    struct Armed
    {
        IoFaultSpec spec;
        uint64_t queries = 0;
        uint64_t fired = 0;
    };

    struct Hit
    {
        IoFaultKind kind;
    };

    /** Does an armed fault fire for (@p label, @p op)? */
    bool fire(const char *label, const char *op, Hit &hit);

    mutable std::mutex mu_;
    std::vector<Armed> faults_;
    Rng rng_;
    uint64_t totalFired_ = 0;
};

/**
 * Crash-safe whole-file publish: write @p contents to `path.tmp.<pid>`,
 * fsync, close, rename over @p path, fsync the parent directory.  A
 * reader never observes a torn file and a crash at any step leaves
 * either the old file or the new one.  All I/O goes through @p vio
 * under @p label (nullptr = the system passthrough).
 */
Status atomicWriteFile(Vio *vio, const char *label,
                       const std::string &path,
                       const std::string &contents);

} // namespace pathsched

#endif // PATHSCHED_SUPPORT_VIO_HPP
