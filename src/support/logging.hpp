/**
 * @file
 * Diagnostic helpers in the style of gem5's logging.hh.
 *
 * The library does not use C++ exceptions.  panic() reports an internal
 * invariant violation (a pathsched bug) and aborts; fatal() reports a
 * user/configuration error and exits with status 1; warn() and inform()
 * print to stderr and continue.
 */

#ifndef PATHSCHED_SUPPORT_LOGGING_HPP
#define PATHSCHED_SUPPORT_LOGGING_HPP

namespace pathsched {

/** Print a printf-style message tagged "panic:" and abort(). */
[[noreturn]] void panicImpl(const char *file, int line, const char *fmt,
                            ...) __attribute__((format(printf, 3, 4)));

/**
 * Make panic() exit with @p code instead of abort()ing.  A negative
 * code restores the default abort.  Drivers that document distinct
 * exit codes (pathsched_cli: 3 = internal bug) set this at startup;
 * libraries and tests leave the abort default so death tests and core
 * dumps keep working.
 */
void setPanicExitCode(int code);

/** Print a printf-style message tagged "fatal:" and exit(1). */
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt,
                            ...) __attribute__((format(printf, 3, 4)));

/** Print a printf-style message tagged "warn:" to stderr. */
void warnImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a printf-style message tagged "info:" to stderr. */
void informImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

#define panic(...) ::pathsched::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fatal(...) ::pathsched::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define warn(...) ::pathsched::warnImpl(__VA_ARGS__)
#define inform(...) ::pathsched::informImpl(__VA_ARGS__)

/**
 * Internal-invariant check that stays on in release builds.
 * Use for conditions that indicate a pathsched bug, never for user error.
 */
#define ps_assert(cond)                                                   \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::pathsched::panicImpl(__FILE__, __LINE__,                    \
                                   "assertion '%s' failed", #cond);       \
        }                                                                 \
    } while (0)

/** Invariant check with a printf-style explanatory message. */
#define ps_assert_msg(cond, ...)                                          \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::pathsched::panicImpl(__FILE__, __LINE__, __VA_ARGS__);      \
        }                                                                 \
    } while (0)

} // namespace pathsched

#endif // PATHSCHED_SUPPORT_LOGGING_HPP
