#include "support/hash.hpp"

namespace pathsched {

uint64_t
fnv1a64(const void *data, size_t size, uint64_t seed)
{
    const auto *p = static_cast<const unsigned char *>(data);
    uint64_t h = seed;
    for (size_t i = 0; i < size; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

uint64_t
fnv1a64Mix(uint64_t state, uint64_t v)
{
    unsigned char bytes[8];
    for (int i = 0; i < 8; ++i)
        bytes[i] = (unsigned char)(v >> (8 * i));
    return fnv1a64(bytes, sizeof bytes, state);
}

namespace {

struct Crc32Table
{
    uint32_t t[256];
    Crc32Table()
    {
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
    }
};

} // namespace

uint32_t
crc32(const void *data, size_t size)
{
    // Magic-static init: safe if first touched from concurrent threads.
    static const Crc32Table table;
    const auto *p = static_cast<const unsigned char *>(data);
    uint32_t c = 0xFFFFFFFFu;
    for (size_t i = 0; i < size; ++i)
        c = table.t[(c ^ p[i]) & 0xFF] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

std::string
hex16(uint64_t v)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[i] = digits[v & 0xF];
        v >>= 4;
    }
    return out;
}

} // namespace pathsched
