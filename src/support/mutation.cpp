#include "support/mutation.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <vector>

namespace pathsched {

namespace {

std::vector<std::string>
splitCsv(const std::string &csv)
{
    std::vector<std::string> names;
    std::stringstream ss(csv);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            names.push_back(item);
    return names;
}

/** Armed set; the pointer is swapped atomically so mutationArmed can
 *  be called from pipeline worker threads without locking. */
std::atomic<const std::vector<std::string> *> g_armed{nullptr};
std::once_flag g_env_once;

void
loadFromEnv()
{
    const char *env = std::getenv("PATHSCHED_MUTATION");
    auto *set = new std::vector<std::string>(
        env != nullptr ? splitCsv(env) : std::vector<std::string>());
    g_armed.store(set, std::memory_order_release);
}

} // namespace

bool
mutationArmed(std::string_view name)
{
    std::call_once(g_env_once, loadFromEnv);
    const std::vector<std::string> *set =
        g_armed.load(std::memory_order_acquire);
    for (const std::string &n : *set)
        if (n == name)
            return true;
    return false;
}

void
setMutationsForTest(const std::string &csv)
{
    std::call_once(g_env_once, loadFromEnv);
    // Leaks the previous set by design: a racing reader may still hold
    // it, and test arming happens a handful of times per process.
    g_armed.store(new std::vector<std::string>(splitCsv(csv)),
                  std::memory_order_release);
}

} // namespace pathsched
