/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * All randomized workload inputs and property tests use this generator so
 * that every run of the repository is reproducible.  The implementation
 * is xoshiro256** (public domain, Blackman & Vigna).
 */

#ifndef PATHSCHED_SUPPORT_RNG_HPP
#define PATHSCHED_SUPPORT_RNG_HPP

#include <cstdint>

namespace pathsched {

/** Deterministic 64-bit PRNG (xoshiro256**). */
class Rng
{
  public:
    /** Seed the generator; equal seeds yield equal streams. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [0, bound) for bound >= 1. */
    uint64_t below(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t range(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli draw with probability p of returning true. */
    bool chance(double p);

  private:
    uint64_t state_[4];
};

} // namespace pathsched

#endif // PATHSCHED_SUPPORT_RNG_HPP
