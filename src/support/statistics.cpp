#include "support/statistics.hpp"

#include <cmath>

#include "support/logging.hpp"

namespace pathsched {

void
RunningStat::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        if (x < min_)
            min_ = x;
        if (x > max_)
            max_ = x;
    }
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    // Canonical mean, same derivation as merge(): whenever the sum is
    // exact (integer samples below 2^53), add-then-merge and pure
    // sequential accumulation agree bit-for-bit.
    mean_ = sum_ / double(count_);
    m2_ += delta * (x - mean_);
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    if (other.min_ < min_)
        min_ = other.min_;
    if (other.max_ > max_)
        max_ = other.max_;
    const double delta = other.mean_ - mean_;
    const double na = double(count_), nb = double(other.count_);
    count_ += other.count_;
    sum_ += other.sum_;
    // Canonical mean: derived from the merged sum rather than updated
    // incrementally (Chan's formula).  count/sum/min/max combine by
    // exact operations, so whenever the sample sums are exact (integer
    // samples below 2^53 — profile counts, op counts), every one of
    // those fields *and* the mean is bit-identical no matter how a
    // sample stream was split into shards or in which order the shards
    // merged.  m2 keeps Chan's combination: it is associative only up
    // to rounding, which merge-order determinism (the executor merges
    // in procedure-id order) absorbs.  tests/merge_property_test.cpp
    // pins both guarantees.
    mean_ = sum_ / double(count_);
    m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
}

double
RunningStat::min() const
{
    return count_ == 0 ? 0.0 : min_;
}

double
RunningStat::max() const
{
    return count_ == 0 ? 0.0 : max_;
}

double
RunningStat::variance() const
{
    return count_ < 2 ? 0.0 : m2_ / double(count_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0;
    for (double x : xs)
        s += x;
    return s / double(xs.size());
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0;
    for (double x : xs) {
        ps_assert(x > 0);
        s += std::log(x);
    }
    return std::exp(s / double(xs.size()));
}

} // namespace pathsched
