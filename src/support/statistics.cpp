#include "support/statistics.hpp"

#include <cmath>

#include "support/logging.hpp"

namespace pathsched {

void
RunningStat::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        if (x < min_)
            min_ = x;
        if (x > max_)
            max_ = x;
    }
    ++count_;
    sum_ += x;
}

double
RunningStat::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / double(count_);
}

double
RunningStat::min() const
{
    return count_ == 0 ? 0.0 : min_;
}

double
RunningStat::max() const
{
    return count_ == 0 ? 0.0 : max_;
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0;
    for (double x : xs)
        s += x;
    return s / double(xs.size());
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0;
    for (double x : xs) {
        ps_assert(x > 0);
        s += std::log(x);
    }
    return std::exp(s / double(xs.size()));
}

} // namespace pathsched
