#include "support/statistics.hpp"

#include <cmath>

#include "support/logging.hpp"

namespace pathsched {

void
RunningStat::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        if (x < min_)
            min_ = x;
        if (x > max_)
            max_ = x;
    }
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / double(count_);
    m2_ += delta * (x - mean_);
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    if (other.min_ < min_)
        min_ = other.min_;
    if (other.max_ > max_)
        max_ = other.max_;
    const double delta = other.mean_ - mean_;
    const double na = double(count_), nb = double(other.count_);
    count_ += other.count_;
    sum_ += other.sum_;
    mean_ += delta * nb / (na + nb);
    m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
}

double
RunningStat::min() const
{
    return count_ == 0 ? 0.0 : min_;
}

double
RunningStat::max() const
{
    return count_ == 0 ? 0.0 : max_;
}

double
RunningStat::variance() const
{
    return count_ < 2 ? 0.0 : m2_ / double(count_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0;
    for (double x : xs)
        s += x;
    return s / double(xs.size());
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0;
    for (double x : xs) {
        ps_assert(x > 0);
        s += std::log(x);
    }
    return std::exp(s / double(xs.size()));
}

} // namespace pathsched
