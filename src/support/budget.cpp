#include "support/budget.hpp"

#include "support/strutil.hpp"

namespace pathsched {

double
Deadline::remainingMs() const
{
    if (!active_)
        return 0.0;
    const auto left = at_ - Clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(left).count();
    return ms > 0.0 ? ms : 0.0;
}

Status
BudgetMeter::checkpoint(uint64_t units)
{
    if (budget_ == nullptr)
        return Status();
    used_ += units;
    if (cap_ != 0 && used_ > cap_) {
        return Status::error(
            ErrorKind::BudgetExceeded,
            strfmt("%s: op budget exhausted (%llu of %llu ops)", stage_,
                   (unsigned long long)used_, (unsigned long long)cap_));
    }
    if (budget_->deadline.expired()) {
        return Status::error(ErrorKind::DeadlineExceeded,
                             strfmt("%s: deadline expired", stage_));
    }
    return Status();
}

Status
deadlineStatus(const ResourceBudget *budget, const char *stage)
{
    if (budget != nullptr && budget->deadline.expired()) {
        return Status::error(ErrorKind::DeadlineExceeded,
                             strfmt("%s: deadline expired", stage));
    }
    return Status();
}

} // namespace pathsched
