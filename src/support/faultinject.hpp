/**
 * @file
 * Deterministic, seedable fault-injection harness.
 *
 * Pass code never fails on the curated workloads, so the pipeline's
 * error-recovery paths would go untested without a way to force
 * failures.  A FaultInjector holds a list of armed faults; the
 * pipeline consults it at every stage boundary
 * (`fire("compact", proc)`) and treats a hit exactly like a real
 * failure of that stage, exercising the per-procedure BB fallback in
 * CI instead of only on paper.
 *
 * Spec grammar (the CLI's --inject flag): faults are separated by ';',
 * fields within a fault by ','.
 *
 *   stage=form,proc=3,kind=verify,count=1,prob=0.5
 *
 *   stage   (required) form | materialize | compact | regalloc |
 *           verify | output-compare  (any label is accepted; these are
 *           the boundaries runPipeline queries)
 *   proc    procedure id, or '*' for every procedure (default '*')
 *   kind    profile | verify | schedule | output | steplimit |
 *           injected  (default injected)
 *   count   maximum number of times this fault fires (default
 *           unlimited)
 *   prob    probability a matching query fires, drawn from the
 *           injector's seeded RNG (default 1.0 — fully deterministic)
 *
 * With prob omitted the harness is purely deterministic; with prob the
 * draw sequence is reproducible for a fixed seed and query order.
 */

#ifndef PATHSCHED_SUPPORT_FAULTINJECT_HPP
#define PATHSCHED_SUPPORT_FAULTINJECT_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "support/rng.hpp"
#include "support/status.hpp"

namespace pathsched {

/** One armed fault. */
struct FaultSpec
{
    /** Matches any procedure id. */
    static constexpr uint32_t kAnyProc = UINT32_MAX;

    std::string stage;
    uint32_t proc = kAnyProc;
    ErrorKind kind = ErrorKind::Injected;
    uint64_t maxFires = UINT64_MAX;
    /** Per-query firing probability; 1.0 = always (deterministic). */
    double prob = 1.0;
};

/** Holds armed faults and answers stage-boundary queries. */
class FaultInjector
{
  public:
    explicit FaultInjector(uint64_t seed = 0) : rng_(seed) {}

    /**
     * Parse @p spec (see the file comment) and arm the faults it
     * describes, in addition to any already armed.
     * @return false with @p error set on a malformed spec.
     */
    bool parse(const std::string &spec, std::string &error);

    /** Arm @p fault directly. */
    void add(FaultSpec fault);

    bool empty() const { return faults_.empty(); }
    size_t size() const { return faults_.size(); }

    /**
     * Stage-boundary query: does an armed fault fire for @p stage on
     * procedure @p proc?  Returns its error kind if so.  Matching is
     * in arming order; the first armed fault that matches (and passes
     * its probability draw and fire budget) wins.
     */
    std::optional<ErrorKind> fire(const std::string &stage, uint32_t proc);

    /** Total fires across all armed faults. */
    uint64_t totalFired() const { return totalFired_; }

  private:
    struct Armed
    {
        FaultSpec spec;
        uint64_t fired = 0;
    };

    std::vector<Armed> faults_;
    Rng rng_;
    uint64_t totalFired_ = 0;
};

} // namespace pathsched

#endif // PATHSCHED_SUPPORT_FAULTINJECT_HPP
