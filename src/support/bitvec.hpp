/**
 * @file
 * Dynamically sized bit vector used by dataflow analyses.
 */

#ifndef PATHSCHED_SUPPORT_BITVEC_HPP
#define PATHSCHED_SUPPORT_BITVEC_HPP

#include <cstdint>
#include <vector>

#include "support/logging.hpp"

namespace pathsched {

/** Fixed-size-after-construction bit vector with set-algebra helpers. */
class BitVec
{
  public:
    BitVec() = default;
    explicit BitVec(size_t nbits)
        : nbits_(nbits), words_((nbits + 63) / 64, 0)
    {}

    size_t size() const { return nbits_; }

    bool
    test(size_t i) const
    {
        ps_assert(i < nbits_);
        return (words_[i >> 6] >> (i & 63)) & 1;
    }

    void
    set(size_t i)
    {
        ps_assert(i < nbits_);
        words_[i >> 6] |= uint64_t(1) << (i & 63);
    }

    void
    reset(size_t i)
    {
        ps_assert(i < nbits_);
        words_[i >> 6] &= ~(uint64_t(1) << (i & 63));
    }

    void
    clear()
    {
        for (auto &w : words_)
            w = 0;
    }

    /** this |= other.  Returns true if any bit changed. */
    bool
    unionWith(const BitVec &other)
    {
        ps_assert(nbits_ == other.nbits_);
        bool changed = false;
        for (size_t i = 0; i < words_.size(); ++i) {
            uint64_t next = words_[i] | other.words_[i];
            changed |= next != words_[i];
            words_[i] = next;
        }
        return changed;
    }

    /** this &= ~other (set difference). */
    void
    subtract(const BitVec &other)
    {
        ps_assert(nbits_ == other.nbits_);
        for (size_t i = 0; i < words_.size(); ++i)
            words_[i] &= ~other.words_[i];
    }

    bool
    operator==(const BitVec &other) const
    {
        return nbits_ == other.nbits_ && words_ == other.words_;
    }

    /** Number of set bits. */
    size_t
    count() const
    {
        size_t n = 0;
        for (uint64_t w : words_)
            n += size_t(__builtin_popcountll(w));
        return n;
    }

  private:
    size_t nbits_ = 0;
    std::vector<uint64_t> words_;
};

} // namespace pathsched

#endif // PATHSCHED_SUPPORT_BITVEC_HPP
