/**
 * @file
 * Shared non-cryptographic hash primitives.
 *
 * Every integrity check in the tree goes through these two functions:
 *
 *  - fnv1a64: the v2 profile checksum and CFG fingerprint primitive
 *    (profile/serialize.hpp), the stage-cache key stream
 *    (pipeline/cache.hpp), and the serve wire/WAL content hashes.
 *  - crc32: reflected CRC-32 (poly 0xEDB88320, the zlib polynomial),
 *    framing the batch journal lines (tools/pathsched_batch) and the
 *    serve wire-format / write-ahead-log frames (serve/wire.hpp).
 *
 * Both were born as per-file copies; they live here so a frame written
 * by one subsystem can always be verified by another.
 */

#ifndef PATHSCHED_SUPPORT_HASH_HPP
#define PATHSCHED_SUPPORT_HASH_HPP

#include <cstdint>
#include <cstddef>
#include <string>

namespace pathsched {

/** FNV-1a 64-bit hash of @p size bytes at @p data, continuing from
 *  @p seed (the default is the standard offset basis, so a one-shot
 *  call is the reference FNV-1a). */
uint64_t fnv1a64(const void *data, size_t size,
                 uint64_t seed = 0xcbf29ce484222325ULL);

/** Fold one little-endian-encoded u64 into a running FNV-1a state. */
uint64_t fnv1a64Mix(uint64_t state, uint64_t v);

/** Reflected CRC-32, poly 0xEDB88320, init/final xor 0xFFFFFFFF. */
uint32_t crc32(const void *data, size_t size);

/** @p v rendered as 16 lowercase hex digits (checksum spelling). */
std::string hex16(uint64_t v);

} // namespace pathsched

#endif // PATHSCHED_SUPPORT_HASH_HPP
