#include "support/vio.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "support/strutil.hpp"

namespace pathsched {

namespace {

/** Split @p s on @p sep, dropping empty pieces (same as the PR-2
 *  fault grammar). */
std::vector<std::string>
splitOn(const std::string &s, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= s.size()) {
        size_t end = s.find(sep, start);
        if (end == std::string::npos)
            end = s.size();
        if (end > start)
            out.push_back(s.substr(start, end - start));
        start = end + 1;
    }
    return out;
}

bool
parseU64(const std::string &s, uint64_t &out)
{
    const char *first = s.data();
    const char *last = s.data() + s.size();
    auto [ptr, ec] = std::from_chars(first, last, out);
    return ec == std::errc() && ptr == last && !s.empty();
}

bool
parseIoFaultKind(const std::string &token, IoFaultKind &out)
{
    if (token == "enospc")
        out = IoFaultKind::Enospc;
    else if (token == "eio")
        out = IoFaultKind::Eio;
    else if (token == "short-write")
        out = IoFaultKind::ShortWrite;
    else if (token == "fsync-fail")
        out = IoFaultKind::FsyncFail;
    else if (token == "rename-fail")
        out = IoFaultKind::RenameFail;
    else
        return false;
    return true;
}

/** The op a kind targets when `op=` is omitted ("" = any op). */
const char *
defaultOpFor(IoFaultKind kind)
{
    switch (kind) {
      case IoFaultKind::Enospc: return "write";
      case IoFaultKind::ShortWrite: return "write";
      case IoFaultKind::FsyncFail: return "fsync";
      case IoFaultKind::RenameFail: return "rename";
      case IoFaultKind::Eio: return "";
    }
    return "";
}

/** The errno an injected kind reports. */
int
errnoFor(IoFaultKind kind)
{
    return kind == IoFaultKind::Enospc ? ENOSPC : EIO;
}

bool
validOp(const std::string &op)
{
    return op == "open" || op == "write" || op == "fsync" ||
           op == "rename" || op == "close";
}

Status
realError(const char *op, const std::string &path)
{
    return Status::error(ErrorKind::IoError,
                         strfmt("%s %s: %s", op, path.c_str(),
                                std::strerror(errno)));
}

Status
injectedError(IoFaultKind kind, const char *op, const std::string &path)
{
    return Status::error(
        ErrorKind::IoError,
        strfmt("injected %s: %s %s: %s", ioFaultKindName(kind), op,
               path.c_str(), std::strerror(errnoFor(kind))));
}

} // namespace

const char *
ioFaultKindName(IoFaultKind kind)
{
    switch (kind) {
      case IoFaultKind::Enospc: return "enospc";
      case IoFaultKind::Eio: return "eio";
      case IoFaultKind::ShortWrite: return "short-write";
      case IoFaultKind::FsyncFail: return "fsync-fail";
      case IoFaultKind::RenameFail: return "rename-fail";
    }
    return "<bad>";
}

bool
Vio::parseFaults(const std::string &spec, std::string &error)
{
    std::vector<IoFaultSpec> parsed;
    for (const std::string &one : splitOn(spec, ';')) {
        IoFaultSpec f;
        bool haveKind = false;
        for (const std::string &field : splitOn(one, ',')) {
            const size_t eq = field.find('=');
            if (eq == std::string::npos) {
                error = strfmt("io-fault field '%s' lacks '='",
                               field.c_str());
                return false;
            }
            const std::string key = field.substr(0, eq);
            const std::string val = field.substr(eq + 1);
            if (key == "path") {
                f.path = val;
            } else if (key == "op") {
                if (!validOp(val)) {
                    error = strfmt("unknown io op '%s'", val.c_str());
                    return false;
                }
                f.op = val;
            } else if (key == "kind") {
                if (!parseIoFaultKind(val, f.kind)) {
                    error = strfmt("unknown io-fault kind '%s'",
                                   val.c_str());
                    return false;
                }
                haveKind = true;
            } else if (key == "count") {
                if (!parseU64(val, f.maxFires) || f.maxFires == 0) {
                    error = strfmt("bad fire count '%s'", val.c_str());
                    return false;
                }
            } else if (key == "nth") {
                if (!parseU64(val, f.nth) || f.nth == 0) {
                    error = strfmt("bad nth selector '%s'", val.c_str());
                    return false;
                }
            } else if (key == "prob") {
                char *end = nullptr;
                f.prob = std::strtod(val.c_str(), &end);
                if (end != val.c_str() + val.size() || f.prob < 0.0 ||
                    f.prob > 1.0) {
                    error = strfmt("bad probability '%s'", val.c_str());
                    return false;
                }
            } else {
                error = strfmt("unknown io-fault field '%s'",
                               key.c_str());
                return false;
            }
        }
        if (!haveKind) {
            error = "io-fault spec lacks a kind= field";
            return false;
        }
        parsed.push_back(std::move(f));
    }
    if (parsed.empty()) {
        error = "empty io-fault spec";
        return false;
    }
    for (IoFaultSpec &f : parsed)
        addFault(std::move(f));
    return true;
}

void
Vio::addFault(IoFaultSpec fault)
{
    std::lock_guard<std::mutex> lock(mu_);
    faults_.push_back({std::move(fault), 0, 0});
}

bool
Vio::armed() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return !faults_.empty();
}

uint64_t
Vio::faultsFired() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return totalFired_;
}

Vio &
Vio::system()
{
    static Vio passthrough;
    return passthrough;
}

bool
Vio::fire(const char *label, const char *op, Hit &hit)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (faults_.empty())
        return false;
    for (Armed &a : faults_) {
        if (a.spec.path != "*" && a.spec.path != label)
            continue;
        const char *want = a.spec.op.empty()
                               ? defaultOpFor(a.spec.kind)
                               : a.spec.op.c_str();
        if (want[0] != '\0' && std::strcmp(want, op) != 0)
            continue;
        ++a.queries;
        if (a.spec.nth != 0 && a.queries != a.spec.nth)
            continue;
        if (a.fired >= a.spec.maxFires)
            continue;
        if (a.spec.prob < 1.0 && !rng_.chance(a.spec.prob))
            continue;
        ++a.fired;
        ++totalFired_;
        hit.kind = a.spec.kind;
        return true;
    }
    return false;
}

Expected<int>
Vio::openFile(const char *label, const std::string &path, int flags,
              mode_t mode)
{
    Hit hit;
    if (fire(label, "open", hit)) {
        errno = errnoFor(hit.kind);
        return injectedError(hit.kind, "open", path);
    }
    int fd;
    do {
        fd = ::open(path.c_str(), flags, mode);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0)
        return realError("open", path);
    return fd;
}

Status
Vio::writeAll(const char *label, int fd, const void *data, size_t size,
              const std::string &path)
{
    const char *p = static_cast<const char *>(data);
    size_t want = size;
    Hit hit;
    if (fire(label, "write", hit)) {
        if (hit.kind == IoFaultKind::ShortWrite) {
            // Persist a genuine prefix so recovery faces a real torn
            // tail, then report the failure.
            want = size / 2;
        } else {
            errno = errnoFor(hit.kind);
            return injectedError(hit.kind, "write", path);
        }
    }
    size_t done = 0;
    while (done < want) {
        const ssize_t n = ::write(fd, p + done, want - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return realError("write", path);
        }
        done += size_t(n);
    }
    if (want < size)
        return injectedError(IoFaultKind::ShortWrite, "write", path);
    return Status();
}

Status
Vio::fsyncFile(const char *label, int fd, const std::string &path)
{
    Hit hit;
    if (fire(label, "fsync", hit)) {
        errno = errnoFor(hit.kind);
        return injectedError(hit.kind, "fsync", path);
    }
    if (::fsync(fd) != 0)
        return realError("fsync", path);
    return Status();
}

Status
Vio::fsyncDir(const char *label, const std::string &dir)
{
    Hit hit;
    if (fire(label, "fsync", hit)) {
        errno = errnoFor(hit.kind);
        return injectedError(hit.kind, "fsync", dir);
    }
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0)
        return realError("open", dir);
    const int rc = ::fsync(fd);
    const int saved = errno;
    ::close(fd);
    if (rc != 0) {
        errno = saved;
        return realError("fsync", dir);
    }
    return Status();
}

Status
Vio::renameFile(const char *label, const std::string &from,
                const std::string &to)
{
    Hit hit;
    if (fire(label, "rename", hit)) {
        errno = errnoFor(hit.kind);
        return injectedError(hit.kind, "rename", to);
    }
    if (std::rename(from.c_str(), to.c_str()) != 0)
        return realError("rename", to);
    return Status();
}

Status
Vio::closeFile(const char *label, int fd, const std::string &path)
{
    Hit hit;
    if (fire(label, "close", hit)) {
        // The fd is still really closed: POSIX leaves it unusable
        // after a failed close, and leaking it would turn an injected
        // fault into a real resource bug.
        ::close(fd);
        errno = errnoFor(hit.kind);
        return injectedError(hit.kind, "close", path);
    }
    if (::close(fd) != 0 && errno != EINTR)
        return realError("close", path);
    return Status();
}

Status
atomicWriteFile(Vio *vio, const char *label, const std::string &path,
                const std::string &contents)
{
    Vio &io = vio != nullptr ? *vio : Vio::system();
    const std::string tmp = strfmt("%s.tmp.%d", path.c_str(),
                                   int(::getpid()));
    Expected<int> fd = io.openFile(label, tmp,
                                   O_WRONLY | O_CREAT | O_TRUNC);
    if (!fd.ok())
        return fd.status();
    Status st = io.writeAll(label, fd.value(), contents.data(),
                            contents.size(), tmp);
    if (st.ok())
        st = io.fsyncFile(label, fd.value(), tmp);
    if (!st.ok()) {
        ::close(fd.value());
        std::remove(tmp.c_str());
        return st;
    }
    if (st = io.closeFile(label, fd.value(), tmp); !st.ok()) {
        std::remove(tmp.c_str());
        return st;
    }
    if (st = io.renameFile(label, tmp, path); !st.ok()) {
        std::remove(tmp.c_str());
        return st;
    }
    const size_t slash = path.find_last_of('/');
    const std::string parent =
        slash == std::string::npos ? "." : path.substr(0, slash);
    return io.fsyncDir(label, parent.empty() ? "/" : parent);
}

} // namespace pathsched
