#include "obs/stats.hpp"

#include <algorithm>
#include <vector>

#include "obs/json.hpp"
#include "support/logging.hpp"
#include "support/strutil.hpp"

namespace pathsched::obs {

Stat &
StatRegistry::at(const std::string &path, Stat::Kind kind)
{
    ps_assert_msg(!path.empty(), "StatRegistry: empty stat path");
    auto [it, inserted] = stats_.try_emplace(path);
    if (inserted)
        it->second.kind = kind;
    else
        ps_assert_msg(it->second.kind == kind,
                      "StatRegistry: '%s' re-registered with a different "
                      "kind",
                      path.c_str());
    return it->second;
}

void
StatRegistry::addCounter(const std::string &path, uint64_t delta)
{
    at(path, Stat::Kind::Counter).counter += delta;
}

void
StatRegistry::setGauge(const std::string &path, double value)
{
    at(path, Stat::Kind::Gauge).gauge = value;
}

void
StatRegistry::addSample(const std::string &path, double sample)
{
    at(path, Stat::Kind::Distribution).dist.add(sample);
}

const Stat *
StatRegistry::find(const std::string &path) const
{
    const auto it = stats_.find(path);
    return it == stats_.end() ? nullptr : &it->second;
}

uint64_t
StatRegistry::counter(const std::string &path) const
{
    const Stat *s = find(path);
    return s != nullptr && s->kind == Stat::Kind::Counter ? s->counter : 0;
}

void
StatRegistry::merge(const StatRegistry &other)
{
    for (const auto &[path, stat] : other.stats_) {
        Stat &mine = at(path, stat.kind);
        switch (stat.kind) {
          case Stat::Kind::Counter: mine.counter += stat.counter; break;
          case Stat::Kind::Gauge: mine.gauge = stat.gauge; break;
          case Stat::Kind::Distribution: mine.dist.merge(stat.dist); break;
        }
    }
}

namespace {

void
writeStatValue(JsonWriter &w, const Stat &s)
{
    switch (s.kind) {
      case Stat::Kind::Counter:
        w.value(s.counter);
        break;
      case Stat::Kind::Gauge:
        w.value(s.gauge);
        break;
      case Stat::Kind::Distribution:
        w.beginObject();
        w.member("count", s.dist.count());
        w.member("sum", s.dist.sum());
        w.member("mean", s.dist.mean());
        w.member("min", s.dist.min());
        w.member("max", s.dist.max());
        w.member("stddev", s.dist.stddev());
        w.endObject();
        break;
    }
}

/** The dotted paths form a trie; emit it as nested objects. */
struct Node
{
    const Stat *leaf = nullptr;
    std::string path;
    std::map<std::string, Node> children;
};

void
writeNode(JsonWriter &w, const Node &n)
{
    if (n.leaf != nullptr) {
        ps_assert_msg(n.children.empty(),
                      "StatRegistry: '%s' is both a leaf and a prefix "
                      "of '%s'",
                      n.path.c_str(),
                      n.children.begin()->second.path.c_str());
        writeStatValue(w, *n.leaf);
        return;
    }
    w.beginObject();
    for (const auto &[name, child] : n.children) {
        w.key(name);
        writeNode(w, child);
    }
    w.endObject();
}

} // namespace

void
StatRegistry::toJson(JsonWriter &w) const
{
    Node root;
    for (const auto &[path, stat] : stats_) {
        Node *n = &root;
        size_t start = 0;
        while (true) {
            const size_t dot = path.find('.', start);
            if (dot == std::string::npos) {
                n = &n->children[path.substr(start)];
                break;
            }
            n = &n->children[path.substr(start, dot - start)];
            n->path = path.substr(0, dot);
            start = dot + 1;
        }
        n->leaf = &stat;
        n->path = path;
    }
    writeNode(w, root);
}

std::string
StatRegistry::toText() const
{
    size_t width = 0;
    for (const auto &[path, stat] : stats_) {
        (void)stat;
        width = std::max(width, path.size());
    }
    std::string out;
    for (const auto &[path, stat] : stats_) {
        out += padRight(path, width + 2);
        switch (stat.kind) {
          case Stat::Kind::Counter:
            out += withCommas(stat.counter);
            break;
          case Stat::Kind::Gauge:
            out += strfmt("%g", stat.gauge);
            break;
          case Stat::Kind::Distribution:
            out += strfmt("mean %.3f  min %.3f  max %.3f  "
                          "stddev %.3f  (n=%llu)",
                          stat.dist.mean(), stat.dist.min(),
                          stat.dist.max(), stat.dist.stddev(),
                          (unsigned long long)stat.dist.count());
            break;
        }
        out += '\n';
    }
    return out;
}

} // namespace pathsched::obs
