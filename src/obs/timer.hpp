/**
 * @file
 * Wall-clock stage timing and Chrome-trace emission.
 *
 * ScopedTimer is an RAII stopwatch that, on destruction (or stop()),
 * delivers its elapsed time to any combination of sinks: a
 * StatRegistry distribution, a StageTrace event, and/or a plain
 * StageTiming vector.  All sinks are optional, so a timer with no
 * sinks costs two steady_clock reads and nothing else — observability
 * off is effectively free.
 *
 * StageTrace accumulates complete ("ph":"X") events and serializes
 * them in the Chrome trace_event JSON format, loadable in
 * chrome://tracing or https://ui.perfetto.dev.  Nesting falls out of
 * event containment: an event wholly inside another renders as its
 * child.
 *
 * Observer bundles the two sinks plus a dotted-path prefix and is the
 * handle the pipeline threads through passes (FormConfig,
 * CompactOptions, PipelineOptions).  Every method is null-safe, so
 * pass code never checks for "observability on".
 */

#ifndef PATHSCHED_OBS_TIMER_HPP
#define PATHSCHED_OBS_TIMER_HPP

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/stats.hpp"

namespace pathsched::obs {

/** One named wall-time measurement, in milliseconds. */
struct StageTiming
{
    std::string name;
    double ms = 0;
};

/** Chrome trace_event collector. */
class StageTrace
{
  public:
    struct Event
    {
        std::string name;
        uint64_t tsUs = 0;  ///< start, microseconds from trace creation
        uint64_t durUs = 0; ///< duration, microseconds
    };

    StageTrace() : origin_(std::chrono::steady_clock::now()) {}

    /** Microseconds elapsed since this trace was created. */
    uint64_t nowUs() const;

    void record(const std::string &name, uint64_t ts_us, uint64_t dur_us);

    const std::vector<Event> &events() const { return events_; }

    /** The whole trace as a Chrome trace_event JSON document. */
    std::string toChromeTrace() const;

    /** Write toChromeTrace() to @p path; false on I/O failure. */
    bool writeFile(const std::string &path) const;

  private:
    std::chrono::steady_clock::time_point origin_;
    std::vector<Event> events_;
};

/** RAII stopwatch; see the file comment. */
class ScopedTimer
{
  public:
    explicit ScopedTimer(std::string name, StatRegistry *stats = nullptr,
                         StageTrace *trace = nullptr,
                         std::vector<StageTiming> *out = nullptr);
    ~ScopedTimer() { stop(); }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    /** Deliver the measurement to the sinks; idempotent. */
    void stop();

    /** Elapsed milliseconds so far (or at stop() once stopped). */
    double elapsedMs() const;

  private:
    std::string name_;
    StatRegistry *stats_;
    StageTrace *trace_;
    std::vector<StageTiming> *out_;
    std::chrono::steady_clock::time_point start_;
    uint64_t traceStartUs_ = 0;
    bool stopped_ = false;
    double stoppedMs_ = 0;
};

/** Null-safe bundle of stat/trace sinks with a dotted-name prefix. */
struct Observer
{
    StatRegistry *stats = nullptr;
    StageTrace *trace = nullptr;
    /** Prepended to every stat path and event name, e.g. "time.P4.". */
    std::string prefix;

    /** A copy of this observer with @p more appended to the prefix. */
    Observer withPrefix(const std::string &more) const;

    /** Start a timer for prefix+name (sinks may be null). */
    ScopedTimer time(const std::string &name,
                     std::vector<StageTiming> *out = nullptr) const;

    void addCounter(const std::string &name, uint64_t delta) const;
    void setGauge(const std::string &name, double value) const;
    void addSample(const std::string &name, double sample) const;
};

} // namespace pathsched::obs

#endif // PATHSCHED_OBS_TIMER_HPP
