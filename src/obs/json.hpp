/**
 * @file
 * Dependency-free JSON support for the observability layer.
 *
 * JsonWriter is a streaming, pretty-printing emitter used by the
 * report writer, the stat registry, and the Chrome trace writer.
 * JsonValue is a small recursive-descent parser used by tests and
 * tools that consume the reports (round-trip guards, BENCH_*.json
 * trajectory checks).  Neither aims to be a general JSON library;
 * both cover exactly RFC 8259 as far as the reports need it.
 */

#ifndef PATHSCHED_OBS_JSON_HPP
#define PATHSCHED_OBS_JSON_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace pathsched::obs {

/** Escape @p s for inclusion inside a JSON string literal (no quotes). */
std::string jsonEscape(const std::string &s);

/** Render a double the way the reports do (shortest round-trippable,
 *  "null" for non-finite values, integral values without exponent). */
std::string jsonNumber(double v);

/**
 * Streaming JSON emitter with bracket matching and comma insertion.
 *
 * Usage:
 *   JsonWriter w;
 *   w.beginObject();
 *   w.key("cycles"); w.value(uint64_t(42));
 *   w.key("stages"); w.beginArray(); ... w.endArray();
 *   w.endObject();
 *   std::string text = w.str();
 *
 * Misuse (value without key inside an object, unbalanced brackets at
 * str()) panics — report-writer bugs, not user errors.
 */
class JsonWriter
{
  public:
    /** @p indent spaces per nesting level; 0 emits compact JSON. */
    explicit JsonWriter(int indent = 2) : indent_(indent) {}

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emit an object member key; the next value() attaches to it. */
    void key(const std::string &k);

    void value(const std::string &v);
    void value(const char *v);
    void value(double v);
    void value(uint64_t v);
    void value(int64_t v);
    void value(int v) { value(int64_t(v)); }
    void value(bool v);
    void valueNull();

    /** Shorthand for key(k) followed by value(v). */
    template <typename T>
    void
    member(const std::string &k, T v)
    {
        key(k);
        value(v);
    }

    /** Finish and return the document; panics on unbalanced brackets. */
    std::string str() const;

  private:
    enum class Scope { Object, Array };
    void prepareValue();
    void newline();

    std::string out_;
    std::vector<Scope> stack_;
    std::vector<bool> hasItems_;
    bool keyPending_ = false;
    int indent_;
};

/**
 * Parsed JSON document node.  Objects preserve insertion order is not
 * required by the consumers, so members live in a std::map.
 */
class JsonValue
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    /** Parse @p text; returns false and sets @p error on bad input. */
    static bool parse(const std::string &text, JsonValue &out,
                      std::string *error = nullptr);

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    bool asBool() const { return bool_; }
    double asNumber() const { return num_; }
    const std::string &asString() const { return str_; }
    const std::vector<JsonValue> &items() const { return arr_; }
    const std::map<std::string, JsonValue> &members() const { return obj_; }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &k) const;

    /** Dotted-path lookup through nested objects, e.g. "test.cycles". */
    const JsonValue *findPath(const std::string &dotted) const;

  private:
    friend class JsonParser;
    Type type_ = Type::Null;
    bool bool_ = false;
    double num_ = 0;
    std::string str_;
    std::vector<JsonValue> arr_;
    std::map<std::string, JsonValue> obj_;
};

} // namespace pathsched::obs

#endif // PATHSCHED_OBS_JSON_HPP
