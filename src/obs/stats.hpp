/**
 * @file
 * Hierarchical statistics registry.
 *
 * Every stat is identified by a dotted path ("form.P4.superblocks",
 * "time.P4.compact.presched") and is one of three kinds, mirroring
 * gem5's stat taxonomy at the scale this project needs:
 *
 *  - counter: monotonically accumulated uint64 (events, items);
 *  - gauge:   last-written double (sizes, ratios, configuration);
 *  - distribution: RunningStat over samples (per-procedure pass
 *    times, per-run measurements) with mean/min/max/stddev.
 *
 * The registry is flat internally (a sorted map keyed by path) and
 * hierarchical at the edges: toJson() nests objects along the dots, so
 * "form.P4.superblocks" serializes as {"form":{"P4":{"superblocks":N}}}.
 * A path must not be both a leaf and a prefix of another path.
 */

#ifndef PATHSCHED_OBS_STATS_HPP
#define PATHSCHED_OBS_STATS_HPP

#include <cstdint>
#include <map>
#include <string>

#include "support/statistics.hpp"

namespace pathsched::obs {

class JsonWriter;

/** One named statistic. */
struct Stat
{
    enum class Kind { Counter, Gauge, Distribution };
    Kind kind = Kind::Counter;
    uint64_t counter = 0;
    double gauge = 0;
    RunningStat dist;
};

class StatRegistry
{
  public:
    /** Accumulate @p delta into the counter at @p path. */
    void addCounter(const std::string &path, uint64_t delta);

    /** Set the gauge at @p path (last write wins). */
    void setGauge(const std::string &path, double value);

    /** Fold @p sample into the distribution at @p path. */
    void addSample(const std::string &path, double sample);

    /** Lookup; nullptr when @p path is absent. */
    const Stat *find(const std::string &path) const;

    /** Convenience: counter value, 0 when absent. */
    uint64_t counter(const std::string &path) const;

    /**
     * Fold @p other into this registry: counters add, gauges take the
     * other's value, distributions merge.  Kind mismatches on the same
     * path panic.
     */
    void merge(const StatRegistry &other);

    bool empty() const { return stats_.empty(); }
    size_t size() const { return stats_.size(); }
    const std::map<std::string, Stat> &all() const { return stats_; }

    /** Emit the registry as one nested JSON object value. */
    void toJson(JsonWriter &w) const;

    /** Flat, aligned text dump (one "path  value" line per stat). */
    std::string toText() const;

  private:
    Stat &at(const std::string &path, Stat::Kind kind);

    std::map<std::string, Stat> stats_;
};

} // namespace pathsched::obs

#endif // PATHSCHED_OBS_STATS_HPP
