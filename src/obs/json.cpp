#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "support/logging.hpp"
#include "support/strutil.hpp"

namespace pathsched::obs {

// --------------------------------------------------------------------
// Escaping and number formatting
// --------------------------------------------------------------------

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strfmt("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    if (v == std::floor(v) && std::fabs(v) < 1e15)
        return strfmt("%.0f", v);
    // %.17g round-trips every double; trim to the shortest that does.
    for (int prec = 15; prec <= 17; ++prec) {
        const std::string s = strfmt("%.*g", prec, v);
        if (std::strtod(s.c_str(), nullptr) == v)
            return s;
    }
    return strfmt("%.17g", v);
}

// --------------------------------------------------------------------
// JsonWriter
// --------------------------------------------------------------------

void
JsonWriter::newline()
{
    if (indent_ <= 0)
        return;
    out_ += '\n';
    out_.append(stack_.size() * size_t(indent_), ' ');
}

void
JsonWriter::prepareValue()
{
    if (stack_.empty()) {
        ps_assert_msg(out_.empty(), "JsonWriter: multiple root values");
        return;
    }
    if (stack_.back() == Scope::Object) {
        ps_assert_msg(keyPending_,
                      "JsonWriter: object value without a key");
        keyPending_ = false;
        return;
    }
    if (hasItems_.back())
        out_ += ',';
    hasItems_.back() = true;
    newline();
}

void
JsonWriter::key(const std::string &k)
{
    ps_assert_msg(!stack_.empty() && stack_.back() == Scope::Object,
                  "JsonWriter: key() outside an object");
    ps_assert_msg(!keyPending_, "JsonWriter: two keys in a row");
    if (hasItems_.back())
        out_ += ',';
    hasItems_.back() = true;
    newline();
    out_ += '"';
    out_ += jsonEscape(k);
    out_ += indent_ > 0 ? "\": " : "\":";
    keyPending_ = true;
}

void
JsonWriter::beginObject()
{
    prepareValue();
    out_ += '{';
    stack_.push_back(Scope::Object);
    hasItems_.push_back(false);
}

void
JsonWriter::endObject()
{
    ps_assert_msg(!stack_.empty() && stack_.back() == Scope::Object &&
                      !keyPending_,
                  "JsonWriter: mismatched endObject()");
    const bool had = hasItems_.back();
    stack_.pop_back();
    hasItems_.pop_back();
    if (had)
        newline();
    out_ += '}';
}

void
JsonWriter::beginArray()
{
    prepareValue();
    out_ += '[';
    stack_.push_back(Scope::Array);
    hasItems_.push_back(false);
}

void
JsonWriter::endArray()
{
    ps_assert_msg(!stack_.empty() && stack_.back() == Scope::Array,
                  "JsonWriter: mismatched endArray()");
    const bool had = hasItems_.back();
    stack_.pop_back();
    hasItems_.pop_back();
    if (had)
        newline();
    out_ += ']';
}

void
JsonWriter::value(const std::string &v)
{
    prepareValue();
    out_ += '"';
    out_ += jsonEscape(v);
    out_ += '"';
}

void
JsonWriter::value(const char *v)
{
    value(std::string(v));
}

void
JsonWriter::value(double v)
{
    prepareValue();
    out_ += jsonNumber(v);
}

void
JsonWriter::value(uint64_t v)
{
    prepareValue();
    out_ += strfmt("%llu", (unsigned long long)v);
}

void
JsonWriter::value(int64_t v)
{
    prepareValue();
    out_ += strfmt("%lld", (long long)v);
}

void
JsonWriter::value(bool v)
{
    prepareValue();
    out_ += v ? "true" : "false";
}

void
JsonWriter::valueNull()
{
    prepareValue();
    out_ += "null";
}

std::string
JsonWriter::str() const
{
    ps_assert_msg(stack_.empty() && !keyPending_,
                  "JsonWriter: unbalanced document (%zu open scopes)",
                  stack_.size());
    return out_;
}

// --------------------------------------------------------------------
// JsonValue parser
// --------------------------------------------------------------------

class JsonParser
{
  public:
    JsonParser(const std::string &text) : text_(text) {}

    bool
    run(JsonValue &out, std::string *error)
    {
        const bool ok = parseValue(out) && (skipWs(), pos_ == text_.size());
        if (!ok && error)
            *error = err_.empty()
                         ? strfmt("trailing garbage at offset %zu", pos_)
                         : err_;
        return ok;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    fail(const std::string &what)
    {
        if (err_.empty())
            err_ = strfmt("%s at offset %zu", what.c_str(), pos_);
        return false;
    }

    bool
    literal(const char *word)
    {
        const size_t n = std::strlen(word);
        if (text_.compare(pos_, n, word) != 0)
            return fail(strfmt("expected '%s'", word));
        pos_ += n;
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        switch (text_[pos_]) {
          case '{': return parseObject(out);
          case '[': return parseArray(out);
          case '"':
            out.type_ = JsonValue::Type::String;
            return parseString(out.str_);
          case 't':
            out.type_ = JsonValue::Type::Bool;
            out.bool_ = true;
            return literal("true");
          case 'f':
            out.type_ = JsonValue::Type::Bool;
            out.bool_ = false;
            return literal("false");
          case 'n':
            out.type_ = JsonValue::Type::Null;
            return literal("null");
          default: return parseNumber(out);
        }
    }

    bool
    parseObject(JsonValue &out)
    {
        out.type_ = JsonValue::Type::Object;
        ++pos_; // '{'
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            std::string k;
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            if (!parseString(k))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':'");
            ++pos_;
            JsonValue v;
            if (!parseValue(v))
                return false;
            out.obj_.emplace(std::move(k), std::move(v));
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    parseArray(JsonValue &out)
    {
        out.type_ = JsonValue::Type::Array;
        ++pos_; // '['
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            JsonValue v;
            if (!parseValue(v))
                return false;
            out.arr_.push_back(std::move(v));
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    parseString(std::string &out)
    {
        ++pos_; // opening quote
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return fail("dangling escape");
            const char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= unsigned(h - 'A' + 10);
                    else
                        return fail("bad \\u escape digit");
                }
                // UTF-8 encode the BMP code point; surrogate pairs are
                // not produced by our writer and are passed through as
                // individual code units.
                if (cp < 0x80) {
                    out += char(cp);
                } else if (cp < 0x800) {
                    out += char(0xC0 | (cp >> 6));
                    out += char(0x80 | (cp & 0x3F));
                } else {
                    out += char(0xE0 | (cp >> 12));
                    out += char(0x80 | ((cp >> 6) & 0x3F));
                    out += char(0x80 | (cp & 0x3F));
                }
                break;
              }
              default: return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue &out)
    {
        const size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            return fail("expected a value");
        char *end = nullptr;
        const std::string tok = text_.substr(start, pos_ - start);
        out.type_ = JsonValue::Type::Number;
        out.num_ = std::strtod(tok.c_str(), &end);
        if (end == nullptr || *end != '\0')
            return fail("malformed number");
        return true;
    }

    const std::string &text_;
    size_t pos_ = 0;
    std::string err_;
};

bool
JsonValue::parse(const std::string &text, JsonValue &out,
                 std::string *error)
{
    out = JsonValue();
    return JsonParser(text).run(out, error);
}

const JsonValue *
JsonValue::find(const std::string &k) const
{
    if (type_ != Type::Object)
        return nullptr;
    const auto it = obj_.find(k);
    return it == obj_.end() ? nullptr : &it->second;
}

const JsonValue *
JsonValue::findPath(const std::string &dotted) const
{
    const JsonValue *v = this;
    size_t start = 0;
    while (v != nullptr && start <= dotted.size()) {
        const size_t dot = dotted.find('.', start);
        const std::string part =
            dotted.substr(start, dot == std::string::npos ? std::string::npos
                                                          : dot - start);
        v = v->find(part);
        if (dot == std::string::npos)
            return v;
        start = dot + 1;
    }
    return v;
}

} // namespace pathsched::obs
