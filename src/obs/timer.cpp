#include "obs/timer.hpp"

#include <fstream>

#include "obs/json.hpp"

namespace pathsched::obs {

using Clock = std::chrono::steady_clock;

// --------------------------------------------------------------------
// StageTrace
// --------------------------------------------------------------------

uint64_t
StageTrace::nowUs() const
{
    return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                        Clock::now() - origin_)
                        .count());
}

void
StageTrace::record(const std::string &name, uint64_t ts_us,
                   uint64_t dur_us)
{
    events_.push_back({name, ts_us, dur_us});
}

std::string
StageTrace::toChromeTrace() const
{
    JsonWriter w;
    w.beginObject();
    w.key("traceEvents");
    w.beginArray();
    for (const Event &e : events_) {
        w.beginObject();
        w.member("name", e.name);
        w.member("cat", "pathsched");
        w.member("ph", "X");
        w.member("ts", e.tsUs);
        w.member("dur", e.durUs);
        w.member("pid", 1);
        w.member("tid", 1);
        w.endObject();
    }
    w.endArray();
    w.member("displayTimeUnit", "ms");
    w.endObject();
    return w.str();
}

bool
StageTrace::writeFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << toChromeTrace() << '\n';
    return bool(out);
}

// --------------------------------------------------------------------
// ScopedTimer
// --------------------------------------------------------------------

ScopedTimer::ScopedTimer(std::string name, StatRegistry *stats,
                         StageTrace *trace, std::vector<StageTiming> *out)
    : name_(std::move(name)), stats_(stats), trace_(trace), out_(out),
      start_(Clock::now())
{
    if (trace_ != nullptr)
        traceStartUs_ = trace_->nowUs();
}

double
ScopedTimer::elapsedMs() const
{
    if (stopped_)
        return stoppedMs_;
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     start_)
        .count();
}

void
ScopedTimer::stop()
{
    if (stopped_)
        return;
    stoppedMs_ = std::chrono::duration<double, std::milli>(Clock::now() -
                                                           start_)
                     .count();
    stopped_ = true;
    if (out_ != nullptr)
        out_->push_back({name_, stoppedMs_});
    if (stats_ != nullptr)
        stats_->addSample(name_, stoppedMs_);
    if (trace_ != nullptr)
        trace_->record(name_, traceStartUs_,
                       uint64_t(stoppedMs_ * 1000.0));
}

// --------------------------------------------------------------------
// Observer
// --------------------------------------------------------------------

Observer
Observer::withPrefix(const std::string &more) const
{
    Observer o = *this;
    o.prefix += more;
    return o;
}

ScopedTimer
Observer::time(const std::string &name,
               std::vector<StageTiming> *out) const
{
    return ScopedTimer(prefix + name, stats, trace, out);
}

void
Observer::addCounter(const std::string &name, uint64_t delta) const
{
    if (stats != nullptr)
        stats->addCounter(prefix + name, delta);
}

void
Observer::setGauge(const std::string &name, double value) const
{
    if (stats != nullptr)
        stats->setGauge(prefix + name, value);
}

void
Observer::addSample(const std::string &name, double sample) const
{
    if (stats != nullptr)
        stats->addSample(prefix + name, sample);
}

} // namespace pathsched::obs
