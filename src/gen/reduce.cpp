#include "gen/reduce.hpp"

#include <algorithm>

#include "gen/generator.hpp"
#include "ir/printer.hpp"

namespace pathsched::gen {

namespace {

GenSpec
withEdit(const GenSpec &spec, Edit e)
{
    GenSpec out = spec;
    out.edits.push_back(e);
    return out;
}

} // namespace

GenSpec
reduceSpec(const GenSpec &start, const Predicate &stillFails,
           ReduceStats *stats, uint32_t maxProbes)
{
    GenSpec spec = start.normalized();
    ReduceStats local;
    ReduceStats &st = stats != nullptr ? *stats : local;

    auto probe = [&](const GenSpec &cand) {
        if (st.probes >= maxProbes)
            return false;
        ++st.probes;
        if (!stillFails(cand))
            return false;
        ++st.accepted;
        spec = cand;
        return true;
    };

    // Phase 1: stub whole procedures.  High to low so helpers go
    // before main, and repeat: dropping one procedure often makes
    // another droppable (its only caller is gone).
    bool changed = true;
    while (changed && st.probes < maxProbes) {
        changed = false;
        for (uint32_t p = spec.procCount(); p-- > 0;) {
            if (spec.procDropped(p))
                continue;
            Edit e;
            e.kind = Edit::Kind::DropProc;
            e.proc = p;
            if (probe(withEdit(spec, e)))
                changed = true;
        }
    }

    // Phase 2: drop statement subtrees, largest first.  Restart the
    // scan after each acceptance: the node list (and the payoff order)
    // changes under the new edit set.
    while (st.probes < maxProbes) {
        std::vector<NodeInfo> nodes = listNodes(spec);
        std::stable_sort(nodes.begin(), nodes.end(),
                         [](const NodeInfo &a, const NodeInfo &b) {
                             return a.subtreeSize > b.subtreeSize;
                         });
        bool advanced = false;
        for (const NodeInfo &n : nodes) {
            Edit e;
            e.kind = Edit::Kind::DropStmt;
            e.proc = n.proc;
            e.node = n.node;
            if (probe(withEdit(spec, e))) {
                advanced = true;
                break;
            }
            if (st.probes >= maxProbes)
                break;
        }
        if (!advanced)
            break;
    }

    // Phase 3: pin surviving loops to one trip.
    for (const NodeInfo &n : listNodes(spec)) {
        if (!n.isLoop || n.trips <= 1 || st.probes >= maxProbes)
            continue;
        Edit e;
        e.kind = Edit::Kind::SetTrips;
        e.proc = n.proc;
        e.node = n.node;
        e.trips = 1;
        probe(withEdit(spec, e));
    }

    // Prune edits that no longer change the generated program (e.g. a
    // subtree drop inside a procedure that was stubbed later).  Pure
    // comparison, no predicate probes.
    const auto printout = [](const GenSpec &s) {
        return ir::toString(generate(s).program);
    };
    std::string current = printout(spec);
    for (size_t i = spec.edits.size(); i-- > 0;) {
        GenSpec cand = spec;
        cand.edits.erase(cand.edits.begin() + long(i));
        if (printout(cand) == current)
            spec = cand;
    }
    return spec;
}

} // namespace pathsched::gen
