/**
 * @file
 * Delta-debugging reduction over generator specs.
 *
 * Given a spec whose workload fails the oracle and a predicate that
 * re-checks "still fails the same way", reduceSpec() greedily shrinks
 * the *spec* (never the IR): stub whole procedures, drop statement
 * subtrees largest-first, then pin loop trip counts to 1.  Because
 * edits address stable preorder node ids of the unedited skeleton
 * (gen/generator.hpp), every candidate is itself a replayable one-line
 * spec — the minimized repro is `pathsched_fuzz --replay '<spec>'`.
 *
 * The predicate is caller-supplied so reduction composes with any
 * failure mode: the fuzz driver probes in a crash-isolated child
 * process (a candidate that crashes the pipeline must not kill the
 * reducer), while tests probe in-process for speed.
 */

#ifndef PATHSCHED_GEN_REDUCE_HPP
#define PATHSCHED_GEN_REDUCE_HPP

#include <cstdint>
#include <functional>

#include "gen/spec.hpp"

namespace pathsched::gen {

/** True when the candidate spec still fails the same way. */
using Predicate = std::function<bool(const GenSpec &)>;

/** Reduction effort accounting. */
struct ReduceStats
{
    uint32_t probes = 0;   ///< predicate evaluations
    uint32_t accepted = 0; ///< probes that shrank the spec
};

/**
 * Shrink @p start while @p stillFails holds, probing at most
 * @p maxProbes candidates.  Returns the smallest accepted spec (at
 * worst @p start normalized).  Redundant edits — ones that no longer
 * change the generated program — are pruned from the result.
 */
GenSpec reduceSpec(const GenSpec &start, const Predicate &stillFails,
                   ReduceStats *stats = nullptr,
                   uint32_t maxProbes = 400);

} // namespace pathsched::gen

#endif // PATHSCHED_GEN_REDUCE_HPP
