/**
 * @file
 * Seed-deterministic IR workload generator.
 *
 * generate() maps a GenSpec to a complete workload — program plus
 * train/test inputs — with construction-time guarantees the oracle
 * (gen/oracle.hpp) relies on:
 *
 *  - the program passes ir::verify in Strict mode;
 *  - it terminates: loops have fixed trip counts and the call graph is
 *    acyclic (procedure k only calls procedures < k), and a bottom-up
 *    static step bound is computed and clamped — when a spec's nesting
 *    would explode the bound, trip counts are halved and then call
 *    sites thinned, deterministically, until the bound fits;
 *  - equal specs yield byte-identical IR in every process: generation
 *    draws from seeded streams only (one independent stream per
 *    procedure, so one procedure's shape never perturbs another's).
 *
 * Generation is two-phase.  Phase one builds a statement-tree skeleton
 * holding every random draw; phase two lowers it to IR.  Reduction
 * edits (GenSpec::edits) apply only during lowering, against stable
 * preorder node ids of the unedited skeleton — so dropping one subtree
 * leaves every other procedure and statement bit-identical, which is
 * what makes delta debugging of a *generative* spec converge.
 */

#ifndef PATHSCHED_GEN_GENERATOR_HPP
#define PATHSCHED_GEN_GENERATOR_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "gen/spec.hpp"
#include "interp/interpreter.hpp"
#include "ir/procedure.hpp"

namespace pathsched::gen {

/** A generated program plus inputs and its termination certificate. */
struct Workload
{
    GenSpec spec; ///< the normalized spec this was generated from
    std::string name;
    ir::Program program;
    interp::ProgramInput train;
    interp::ProgramInput test;
    /** Static upper bound on dynamic operations of one run. */
    uint64_t stepBound = 0;
    /** Trip-count right-shift applied to fit the bound (0 = none). */
    uint32_t tripShift = 0;
    /** Per-procedure cap on lowered call sites (UINT32_MAX = none). */
    uint32_t callQuota = UINT32_MAX;
};

/** Generate the workload @p spec describes (spec is normalized first). */
Workload generate(const GenSpec &spec);

/** One live skeleton node, for the reducer's edit enumeration. */
struct NodeInfo
{
    uint32_t proc = 0;
    uint32_t node = 0;        ///< preorder id in the unedited skeleton
    const char *kind = "";    ///< "alu", "load", ..., "if", "loop"
    uint32_t subtreeSize = 1; ///< statements dropped by drop=pK.nN
    bool isLoop = false;
    uint32_t trips = 0;       ///< effective trips (SetTrips applied)
};

/**
 * Enumerate the statement nodes of @p spec's skeleton that are still
 * live under its edits (dropped procedures and subtrees are skipped),
 * in (proc, preorder) order.
 */
std::vector<NodeInfo> listNodes(const GenSpec &spec);

/** Procedures (main included) not stubbed by a DropProc edit. */
uint32_t liveProcCount(const GenSpec &spec);

} // namespace pathsched::gen

#endif // PATHSCHED_GEN_GENERATOR_HPP
