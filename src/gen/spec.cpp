#include "gen/spec.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "support/strutil.hpp"

namespace pathsched::gen {

namespace {

/** Quantize a density so "%.4f" round-trips bit-exactly. */
double
quant(double d)
{
    d = std::clamp(d, 0.0, 1.0);
    return std::round(d * 10000.0) / 10000.0;
}

bool
parseU64(const std::string &s, uint64_t &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (errno != 0 || end != s.c_str() + s.size())
        return false;
    out = v;
    return true;
}

bool
parseU32(const std::string &s, uint32_t &out)
{
    uint64_t v;
    if (!parseU64(s, v) || v > UINT32_MAX)
        return false;
    out = uint32_t(v);
    return true;
}

bool
parseDensity(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end != s.c_str() + s.size() || !(v >= 0.0) || v > 1.0)
        return false;
    out = v;
    return true;
}

/** Parse "pK" or "pK.nJ"; node is left untouched for the bare form. */
bool
parseSite(const std::string &s, uint32_t &proc, uint32_t *node)
{
    if (s.size() < 2 || s[0] != 'p')
        return false;
    const size_t dot = s.find('.');
    if (dot == std::string::npos)
        return parseU32(s.substr(1), proc) && node == nullptr;
    if (node == nullptr)
        return false;
    const std::string n = s.substr(dot + 1);
    if (n.size() < 2 || n[0] != 'n')
        return false;
    return parseU32(s.substr(1, dot - 1), proc) &&
           parseU32(n.substr(1), *node);
}

} // namespace

const char *
branchKindName(BranchKind kind)
{
    switch (kind) {
      case BranchKind::Random:     return "random";
      case BranchKind::Tttf:       return "tttf";
      case BranchKind::Phased:     return "phased";
      case BranchKind::Correlated: return "corr";
      case BranchKind::Mixed:      return "mixed";
    }
    return "?";
}

bool
parseBranchKind(const std::string &text, BranchKind &out)
{
    if (text == "random")
        out = BranchKind::Random;
    else if (text == "tttf")
        out = BranchKind::Tttf;
    else if (text == "phased")
        out = BranchKind::Phased;
    else if (text == "corr")
        out = BranchKind::Correlated;
    else if (text == "mixed")
        out = BranchKind::Mixed;
    else
        return false;
    return true;
}

bool
GenSpec::procDropped(uint32_t proc) const
{
    for (const Edit &e : edits) {
        if (e.kind == Edit::Kind::DropProc && e.proc == proc)
            return true;
    }
    return false;
}

std::string
GenSpec::toString() const
{
    std::string s = strfmt(
        "seed=%llu,procs=%u,depth=%u,loopdepth=%u,stmts=%u,trips=%u,"
        "mem=%llu,calls=%.4f,loads=%.4f,stores=%.4f,emits=%.4f,"
        "ifs=%.4f,loops=%.4f,branch=%s,period=%u",
        (unsigned long long)seed, procs, depth, loopDepth, stmts,
        maxTrips, (unsigned long long)memWords, callDensity, loadDensity,
        storeDensity, emitDensity, ifDensity, loopDensity,
        branchKindName(branch), period);
    for (const Edit &e : edits) {
        switch (e.kind) {
          case Edit::Kind::DropProc:
            s += strfmt(",drop=p%u", e.proc);
            break;
          case Edit::Kind::DropStmt:
            s += strfmt(",drop=p%u.n%u", e.proc, e.node);
            break;
          case Edit::Kind::SetTrips:
            s += strfmt(",settrips=p%u.n%u:%u", e.proc, e.node, e.trips);
            break;
        }
    }
    return s;
}

bool
GenSpec::parse(const std::string &text, GenSpec &out, std::string &error)
{
    GenSpec spec;
    size_t pos = 0;
    while (pos <= text.size()) {
        size_t end = text.find(',', pos);
        if (end == std::string::npos)
            end = text.size();
        std::string item = text.substr(pos, end - pos);
        pos = end + 1;
        // Trim surrounding whitespace so specs paste cleanly.
        while (!item.empty() && (item.front() == ' ' || item.front() == '\t'))
            item.erase(item.begin());
        while (!item.empty() && (item.back() == ' ' || item.back() == '\t'))
            item.pop_back();
        if (item.empty()) {
            if (end == text.size())
                break;
            continue;
        }
        const size_t eq = item.find('=');
        if (eq == std::string::npos) {
            error = "expected key=value, got '" + item + "'";
            return false;
        }
        const std::string key = item.substr(0, eq);
        const std::string val = item.substr(eq + 1);
        bool ok = true;
        if (key == "seed") {
            ok = parseU64(val, spec.seed);
        } else if (key == "procs") {
            ok = parseU32(val, spec.procs);
        } else if (key == "depth") {
            ok = parseU32(val, spec.depth);
        } else if (key == "loopdepth") {
            ok = parseU32(val, spec.loopDepth);
        } else if (key == "stmts") {
            ok = parseU32(val, spec.stmts);
        } else if (key == "trips") {
            ok = parseU32(val, spec.maxTrips);
        } else if (key == "mem") {
            ok = parseU64(val, spec.memWords);
        } else if (key == "calls") {
            ok = parseDensity(val, spec.callDensity);
        } else if (key == "loads") {
            ok = parseDensity(val, spec.loadDensity);
        } else if (key == "stores") {
            ok = parseDensity(val, spec.storeDensity);
        } else if (key == "emits") {
            ok = parseDensity(val, spec.emitDensity);
        } else if (key == "ifs") {
            ok = parseDensity(val, spec.ifDensity);
        } else if (key == "loops") {
            ok = parseDensity(val, spec.loopDensity);
        } else if (key == "branch") {
            ok = parseBranchKind(val, spec.branch);
        } else if (key == "period") {
            ok = parseU32(val, spec.period);
        } else if (key == "drop") {
            Edit e;
            if (parseSite(val, e.proc, nullptr)) {
                e.kind = Edit::Kind::DropProc;
            } else if (parseSite(val, e.proc, &e.node)) {
                e.kind = Edit::Kind::DropStmt;
            } else {
                ok = false;
            }
            if (ok)
                spec.edits.push_back(e);
        } else if (key == "settrips") {
            Edit e;
            e.kind = Edit::Kind::SetTrips;
            const size_t colon = val.find(':');
            ok = colon != std::string::npos &&
                 parseSite(val.substr(0, colon), e.proc, &e.node) &&
                 parseU32(val.substr(colon + 1), e.trips);
            if (ok)
                spec.edits.push_back(e);
        } else {
            error = "unknown key '" + key + "'";
            return false;
        }
        if (!ok) {
            error = "bad value for '" + key + "': '" + val + "'";
            return false;
        }
        if (end == text.size())
            break;
    }
    out = spec;
    return true;
}

GenSpec
GenSpec::normalized() const
{
    GenSpec s = *this;
    s.procs = std::min(s.procs, 12u);
    s.depth = std::clamp(s.depth, 1u, 5u);
    s.loopDepth = std::min(s.loopDepth, std::min(s.depth, 3u));
    s.stmts = std::clamp(s.stmts, 1u, 12u);
    s.maxTrips = std::clamp(s.maxTrips, 1u, 32u);
    s.memWords = std::clamp<uint64_t>(s.memWords, 1, 4096);
    s.period = std::clamp(s.period, 2u, 64u);
    s.callDensity = quant(s.callDensity);
    s.loadDensity = quant(s.loadDensity);
    s.storeDensity = quant(s.storeDensity);
    s.emitDensity = quant(s.emitDensity);
    s.ifDensity = quant(s.ifDensity);
    s.loopDensity = quant(s.loopDensity);
    // Leave headroom for plain ALU statements: with the densities
    // summing near 1 a region would be all control flow and calls.
    const double sum = s.callDensity + s.loadDensity + s.storeDensity +
                       s.emitDensity + s.ifDensity + s.loopDensity;
    if (sum > 0.85) {
        const double f = 0.85 / sum;
        s.callDensity = quant(s.callDensity * f);
        s.loadDensity = quant(s.loadDensity * f);
        s.storeDensity = quant(s.storeDensity * f);
        s.emitDensity = quant(s.emitDensity * f);
        s.ifDensity = quant(s.ifDensity * f);
        s.loopDensity = quant(s.loopDensity * f);
    }
    return s;
}

} // namespace pathsched::gen
