/**
 * @file
 * Differential / metamorphic oracle over generated workloads.
 *
 * One generated workload runs through every scheduling configuration;
 * anything short of bit-exact behaviour preservation is a finding:
 *
 *  - the generated program itself must pass ir::verify (Strict) and
 *    its reference run must finish under the generator's step bound;
 *  - every configuration's pipeline run must complete (OK status),
 *    report outputMatches, and reproduce the reference run's output
 *    and return value;
 *  - a clean generated workload must suffer ZERO degradations — no
 *    budget is armed and no fault injected, so any BB quarantine is a
 *    pass bug the robustness layer papered over, not robustness;
 *  - the transformed program must pass ir::verify (Superblock mode),
 *    checked per procedure with verifyProcStatus.
 *
 * Metamorphic invariants (opts.metamorphic, checked when the base runs
 * are clean): semantics must be invariant under profile-text record
 * permutation and uniform count scaling — the profile only steers
 * formation, never meaning — and a *disarmed* fault injector (a spec
 * that can never match) must leave the transformed program
 * byte-identical with identical cycles and code bytes.
 *
 * Findings carry a stable classification string ("P4:degraded:compact")
 * that the fuzz driver's delta reducer uses as its "still fails the
 * same way" predicate.
 */

#ifndef PATHSCHED_GEN_ORACLE_HPP
#define PATHSCHED_GEN_ORACLE_HPP

#include <string>
#include <vector>

#include "gen/generator.hpp"
#include "pipeline/pipeline.hpp"

namespace pathsched::gen {

/** Oracle knobs. */
struct OracleOptions
{
    /** Configurations to differentiate; empty = all five. */
    std::vector<pipeline::SchedConfig> configs;
    /** Also check the metamorphic invariants (profile permutation /
     *  scaling, disarmed injection). */
    bool metamorphic = true;
    /** Worker threads for each pipeline run (results are
     *  thread-count-invariant; this only changes wall time). */
    unsigned threads = 1;
    /** Attach the I-cache during test runs. */
    bool useICache = false;
};

/** One oracle violation. */
struct OracleFinding
{
    std::string config;  ///< configuration name, or "-" (program-level)
    std::string check;   ///< "output", "degraded", "verify", "meta-..."
    std::string detail;  ///< stage / error kind, may be empty
    std::string message;

    /** Stable classification: "config:check[:detail]". */
    std::string klass() const;
};

/** Everything the oracle concluded about one workload. */
struct OracleResult
{
    std::vector<OracleFinding> findings;
    uint64_t refDynInstrs = 0; ///< reference-run dynamic ops

    bool ok() const { return findings.empty(); }
    /** First finding's klass(), or "" when clean. */
    std::string classification() const;
    /** Human-readable multi-line report ("" when clean). */
    std::string report() const;
};

/** Run the oracle over an already-generated workload. */
OracleResult checkWorkload(const Workload &w,
                           const OracleOptions &opts = OracleOptions());

/** generate() + checkWorkload() in one step. */
OracleResult checkSpec(const GenSpec &spec,
                       const OracleOptions &opts = OracleOptions());

/** The five paper configurations (the default differential set). */
std::vector<pipeline::SchedConfig> allConfigs();

} // namespace pathsched::gen

#endif // PATHSCHED_GEN_ORACLE_HPP
