#include "gen/oracle.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <sstream>

#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "pipeline/backend.hpp"
#include "profile/edge_profile.hpp"
#include "profile/path_profile.hpp"
#include "profile/serialize.hpp"
#include "support/faultinject.hpp"
#include "support/rng.hpp"
#include "support/strutil.hpp"

namespace pathsched::gen {

using pipeline::PipelineOptions;
using pipeline::PipelineResult;
using pipeline::SchedConfig;

namespace {

/** Interpreter ceiling for oracle runs: the generator's static bound
 *  plus slack for the transformed program's compensation code.  A run
 *  hitting this is a finding, never a hang. */
uint64_t
stepCeiling(const Workload &w)
{
    const uint64_t slack = w.stepBound * 4 + (1ULL << 16);
    return std::min(slack, interp::kDefaultMaxSteps);
}

void
add(OracleResult &res, std::string config, std::string check,
    std::string detail, std::string message)
{
    res.findings.push_back({std::move(config), std::move(check),
                            std::move(detail), std::move(message)});
}

/** Compare a pipeline test run against the reference interpretation. */
bool
matchesRef(const PipelineResult &r, const interp::RunResult &ref)
{
    return r.test.returnValue == ref.returnValue &&
           r.test.output == ref.output;
}

/** What the disarmed-injection check compares byte-for-byte. */
struct BaselineRun
{
    std::string transformedText;
    uint64_t cycles = 0;
    uint64_t codeBytes = 0;
    std::vector<int64_t> output;
};

void
checkTransformed(OracleResult &res, const char *cfg,
                 const PipelineResult &r)
{
    if (r.transformed == nullptr) {
        add(res, cfg, "verify", "", "keepTransformed produced nothing");
        return;
    }
    const ir::Program &t = *r.transformed;
    for (ir::ProcId p = 0; p < t.procs.size(); ++p) {
        const Status st =
            ir::verifyProcStatus(t, p, ir::VerifyMode::Superblock);
        if (!st.ok())
            add(res, cfg, "verify", t.procs[p].name, st.message());
    }
}

/** Record every way one pipeline run can violate the oracle. */
void
checkRun(OracleResult &res, const char *cfg, const PipelineResult &r,
         const interp::RunResult &ref)
{
    if (!r.status.ok()) {
        add(res, cfg, "status", errorKindName(r.status.kind()),
            r.status.message());
        return;
    }
    for (const auto &d : r.degraded) {
        // No budget is armed and no fault injected on a clean
        // generated workload: any quarantine is a pass bug the
        // robustness layer absorbed, and exactly what we hunt.
        add(res, cfg, "degraded", d.stage,
            strfmt("proc %s: %s: %s", d.procName.c_str(),
                   errorKindName(d.kind), d.message.c_str()));
    }
    if (!r.outputMatches)
        add(res, cfg, "output", "",
            "transformed output diverges from the original program");
    if (!matchesRef(r, ref))
        add(res, cfg, "reference", "",
            "test run diverges from the reference interpretation");
    checkTransformed(res, cfg, r);
}

std::vector<std::string>
splitWords(const std::string &line)
{
    std::vector<std::string> out;
    std::istringstream in(line);
    std::string w;
    while (in >> w)
        out.push_back(w);
    return out;
}

/** Shuffle a profile's record lines, preserving the header line. */
std::string
permuteLines(const std::string &text, uint64_t seed)
{
    std::vector<std::string> lines;
    size_t pos = 0;
    while (pos < text.size()) {
        size_t end = text.find('\n', pos);
        if (end == std::string::npos)
            end = text.size();
        if (end > pos)
            lines.push_back(text.substr(pos, end - pos));
        pos = end + 1;
    }
    if (lines.size() > 2) {
        Rng rng(seed);
        for (size_t i = lines.size() - 1; i > 1; --i) {
            const size_t j = 1 + size_t(rng.below(i)); // keep header
            std::swap(lines[i], lines[j]);
        }
    }
    std::string out;
    for (const auto &l : lines) {
        out += l;
        out += '\n';
    }
    return out;
}

/** Multiply every record's count field by @p factor.  The count is the
 *  3rd field of `path` records and the last field of `block`/`edge`
 *  records; headers and unknown lines pass through untouched. */
std::string
scaleCounts(const std::string &text, uint64_t factor)
{
    std::string out;
    size_t pos = 0;
    while (pos <= text.size()) {
        size_t end = text.find('\n', pos);
        if (end == std::string::npos)
            end = text.size();
        std::string line = text.substr(pos, end - pos);
        const std::vector<std::string> f = splitWords(line);
        if (f.size() >= 4 && f[0] == "path") {
            uint64_t c = std::strtoull(f[2].c_str(), nullptr, 10);
            std::string rebuilt = f[0] + " " + f[1] + " " +
                                  std::to_string(c * factor);
            for (size_t i = 3; i < f.size(); ++i)
                rebuilt += " " + f[i];
            line = rebuilt;
        } else if ((f.size() == 4 && f[0] == "block") ||
                   (f.size() == 5 && f[0] == "edge")) {
            uint64_t c =
                std::strtoull(f.back().c_str(), nullptr, 10);
            std::string rebuilt = f[0];
            for (size_t i = 1; i + 1 < f.size(); ++i)
                rebuilt += " " + f[i];
            rebuilt += " " + std::to_string(c * factor);
            line = rebuilt;
        }
        out += line;
        out += '\n';
        if (end == text.size())
            break;
        pos = end + 1;
    }
    return out;
}

/** Evaluate one metamorphic-variant run: same pass/fail bar as the
 *  base runs, folded into a single check name. */
void
checkMetaRun(OracleResult &res, const char *cfg, const char *check,
             const PipelineResult &r, const interp::RunResult &ref)
{
    if (!r.status.ok()) {
        add(res, cfg, check, "status", r.status.toString());
        return;
    }
    if (!r.degraded.empty())
        add(res, cfg, check, "degraded",
            strfmt("proc %s degraded at %s",
                   r.degraded.front().procName.c_str(),
                   r.degraded.front().stage.c_str()));
    if (!r.outputMatches || !matchesRef(r, ref))
        add(res, cfg, check, "output",
            "semantics changed under a meaning-preserving profile "
            "mutation");
    if (r.profileAudit.enabled && !r.profileAudit.clean())
        add(res, cfg, check, "audit",
            "a genuine (mutated-in-form-only) profile failed admission");
}

} // namespace

std::string
OracleFinding::klass() const
{
    std::string k = config + ":" + check;
    if (!detail.empty())
        k += ":" + detail;
    return k;
}

std::string
OracleResult::classification() const
{
    return findings.empty() ? std::string() : findings.front().klass();
}

std::string
OracleResult::report() const
{
    std::string out;
    for (const auto &f : findings)
        out += strfmt("[%s] %s%s%s: %s\n", f.config.c_str(),
                      f.check.c_str(), f.detail.empty() ? "" : ":",
                      f.detail.c_str(), f.message.c_str());
    return out;
}

std::vector<SchedConfig>
allConfigs()
{
    // Registry-driven: a newly registered backend joins the oracle's
    // cross-config sweep (and, through it, the fuzz driver and the
    // corpus replays) with no edit here.
    std::vector<SchedConfig> out;
    for (const pipeline::BackendDesc *be : pipeline::allBackends())
        out.push_back(be->config);
    return out;
}

OracleResult
checkWorkload(const Workload &w, const OracleOptions &opts)
{
    OracleResult res;

    // The generator's own contract first: a malformed or runaway
    // program is a generator bug, reported instead of fed downstream.
    if (const Status st =
            ir::verifyStatus(w.program, ir::VerifyMode::Strict);
        !st.ok()) {
        add(res, "-", "gen-verify", "", st.message());
        return res;
    }
    interp::InterpOptions iopts;
    iopts.maxSteps = stepCeiling(w);
    const interp::RunResult ref =
        interp::Interpreter(w.program, iopts).run(w.test);
    res.refDynInstrs = ref.dynInstrs;
    if (ref.truncated()) {
        add(res, "-", "gen-steps", "",
            "reference run hit the step ceiling");
        return res;
    }
    if (ref.dynInstrs > w.stepBound) {
        add(res, "-", "gen-bound", "",
            strfmt("ran %llu ops, static bound promised %llu",
                   (unsigned long long)ref.dynInstrs,
                   (unsigned long long)w.stepBound));
        return res;
    }

    const std::vector<SchedConfig> configs =
        opts.configs.empty() ? allConfigs() : opts.configs;
    const PipelineOptions base = PipelineOptions::Builder()
                                     .keepTransformed(true)
                                     .maxSteps(stepCeiling(w))
                                     .threads(opts.threads)
                                     .icache(opts.useICache)
                                     .build();

    std::map<std::string, BaselineRun> baselines;
    for (const SchedConfig c : configs) {
        const char *cfg = pipeline::configName(c);
        const PipelineResult r =
            runPipeline(w.program, w.train, w.test, c, base);
        checkRun(res, cfg, r, ref);
        if (r.status.ok() && r.transformed != nullptr)
            baselines[cfg] = {ir::toString(*r.transformed),
                              r.test.cycles, r.codeBytes,
                              r.test.output};
    }

    // Metamorphic invariants only add signal on top of clean base
    // runs; with a base finding they would re-report the same bug.
    if (!opts.metamorphic || !res.findings.empty())
        return res;

    // Collect genuine training profiles once.
    profile::PathProfiler pp(w.program, {});
    profile::EdgeProfiler ep(w.program);
    {
        interp::Interpreter trainer(w.program, iopts);
        trainer.addListener(&pp);
        trainer.addListener(&ep);
        trainer.run(w.train);
    }
    const std::string path_text = profile::toText(pp);
    const std::string edge_text = profile::toText(ep);

    struct MetaCase
    {
        SchedConfig config;
        const char *check;
        std::string edgeText;
        std::string pathText;
    };
    const uint64_t s = w.spec.seed;
    const std::vector<MetaCase> cases = {
        {SchedConfig::P4, "meta-permute", "",
         permuteLines(path_text, s ^ 0x70657231ULL)},
        {SchedConfig::P4, "meta-scale", "", scaleCounts(path_text, 3)},
        {SchedConfig::M4, "meta-permute",
         permuteLines(edge_text, s ^ 0x70657232ULL), ""},
        {SchedConfig::M4, "meta-scale", scaleCounts(edge_text, 3), ""},
    };
    for (const MetaCase &mc : cases) {
        const PipelineOptions popts = PipelineOptions::Builder(base)
                                          .edgeProfile(mc.edgeText)
                                          .pathProfile(mc.pathText)
                                          .build();
        const PipelineResult r = runPipeline(w.program, w.train, w.test,
                                             mc.config, popts);
        checkMetaRun(res, pipeline::configName(mc.config), mc.check, r,
                     ref);
    }

    // Disarmed injection: a fault spec that can never match must leave
    // the run bit-identical to the uninjected baseline.
    {
        FaultInjector inj(0);
        FaultSpec never;
        never.stage = "compact";
        never.proc = FaultSpec::kAnyProc - 1; // no such procedure
        inj.add(never);
        const SchedConfig c = configs.back();
        const char *cfg = pipeline::configName(c);
        const PipelineOptions popts =
            PipelineOptions::Builder(base).faults(&inj).build();
        const PipelineResult r =
            runPipeline(w.program, w.train, w.test, c, popts);
        const auto it = baselines.find(cfg);
        if (!r.status.ok() || r.transformed == nullptr) {
            add(res, cfg, "meta-disarmed", "status",
                r.status.ok() ? "no transformed program"
                              : r.status.toString());
        } else if (it != baselines.end()) {
            const BaselineRun &b = it->second;
            if (ir::toString(*r.transformed) != b.transformedText ||
                r.test.cycles != b.cycles || r.codeBytes != b.codeBytes ||
                r.test.output != b.output)
                add(res, cfg, "meta-disarmed", "",
                    "disarmed fault injection perturbed the run");
        }
    }
    return res;
}

OracleResult
checkSpec(const GenSpec &spec, const OracleOptions &opts)
{
    return checkWorkload(generate(spec), opts);
}

} // namespace pathsched::gen
