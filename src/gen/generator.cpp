#include "gen/generator.hpp"

#include <algorithm>

#include "ir/builder.hpp"
#include "support/logging.hpp"
#include "support/rng.hpp"
#include "support/strutil.hpp"

namespace pathsched::gen {

using ir::BlockId;
using ir::IrBuilder;
using ir::Opcode;
using ir::ProcId;
using ir::RegId;

namespace {

const Opcode kAluOps[] = {
    Opcode::Add, Opcode::Sub, Opcode::Mul, Opcode::And, Opcode::Or,
    Opcode::Xor, Opcode::Shl, Opcode::Shr, Opcode::CmpEq, Opcode::CmpNe,
    Opcode::CmpLt, Opcode::CmpLe, Opcode::CmpGt, Opcode::CmpGe,
    Opcode::Div, Opcode::Rem,
};

/** Skeleton nodes per procedure: bounds IR size however the density
 *  knobs conspire (each statement lowers to a handful of ops). */
constexpr uint32_t kNodeBudget = 320;

/** Ceiling on the static step bound; specs whose nesting would exceed
 *  it are normalized (trip halving, then call thinning) to fit, so one
 *  oracle run can never take unbounded time. */
constexpr uint64_t kMaxGenSteps = 250'000;

/** Saturation cap well above kMaxGenSteps but far from u64 overflow. */
constexpr uint64_t kBoundCap = 1ULL << 50;

uint64_t
satAdd(uint64_t a, uint64_t b)
{
    const uint64_t s = a + b;
    return (s < a || s > kBoundCap) ? kBoundCap : s;
}

uint64_t
satMul(uint64_t a, uint64_t b)
{
    if (a != 0 && b > kBoundCap / a)
        return kBoundCap;
    return std::min(a * b, kBoundCap);
}

/** splitmix64-style stream splitter: one independent RNG stream per
 *  (seed, salt), so editing one procedure never perturbs another. */
uint64_t
mix(uint64_t seed, uint64_t salt)
{
    uint64_t x = seed ^ (0x9E3779B97F4A7C15ULL * (salt + 1));
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return x;
}

/** Branch pattern of one conditional (subset of BranchKind). */
enum Pattern : uint8_t
{
    kPatRandom = 0,
    kPatTttf = 1,
    kPatPhased = 2,
    kPatCorr = 3,
};

/** One skeleton statement: every random draw it may need, whatever its
 *  kind — uniform draw counts keep the per-procedure streams simple. */
struct Stmt
{
    enum class Kind { Alu, Load, Store, Emit, Call, If, Loop };

    Kind kind = Kind::Alu;
    uint32_t id = 0; ///< preorder id within the procedure
    uint32_t opIdx = 0;
    bool useImm = false;
    bool overwrite = false;
    int64_t imm = 0;
    uint64_t pickA = 0, pickB = 0, pickC = 0; ///< var-pool picks (raw)
    uint64_t slot = 0;     ///< pool slot replaced when the pool is full
    uint64_t offset = 0;   ///< memory offset (raw; mod memWords)
    uint64_t calleePick = 0;
    uint32_t trips = 1;
    uint8_t pattern = kPatRandom;
    std::vector<Stmt> a; ///< then-arm / loop body
    std::vector<Stmt> b; ///< else-arm
};

struct ProcSkel
{
    uint32_t nparams = 0;
    int64_t consts[3] = {0, 0, 0};
    uint64_t retPick = 0;
    std::vector<Stmt> body;
    uint32_t nodeCount = 0;
};

struct Skeleton
{
    std::vector<ProcSkel> procs; ///< index spec.procs is main
};

const char *
stmtKindName(Stmt::Kind k)
{
    switch (k) {
      case Stmt::Kind::Alu:   return "alu";
      case Stmt::Kind::Load:  return "load";
      case Stmt::Kind::Store: return "store";
      case Stmt::Kind::Emit:  return "emit";
      case Stmt::Kind::Call:  return "call";
      case Stmt::Kind::If:    return "if";
      case Stmt::Kind::Loop:  return "loop";
    }
    return "?";
}

/** Builds one procedure's skeleton from its private RNG stream. */
class SkeletonBuilder
{
  public:
    SkeletonBuilder(const GenSpec &spec, uint32_t procIdx)
        : spec_(spec), rng_(mix(spec.seed, procIdx)),
          callable_(procIdx < spec.procs ? procIdx : spec.procs)
    {}

    ProcSkel
    run()
    {
        ProcSkel p;
        p.nparams = uint32_t(rng_.below(3));
        for (int64_t &c : p.consts)
            c = rng_.range(-20, 20);
        p.retPick = rng_.next();
        buildRegion(0, 0, p);
        p.body = std::move(region_);
        p.nodeCount = nextId_;
        return p;
    }

  private:
    void
    buildRegion(uint32_t depth, uint32_t loopDepth, ProcSkel &p)
    {
        std::vector<Stmt> out;
        const uint64_t n = 1 + rng_.below(spec_.stmts);
        for (uint64_t s = 0; s < n; ++s)
            out.push_back(buildStmt(depth, loopDepth, p));
        // The enclosing frame decides where the region lands.
        region_ = std::move(out);
    }

    Stmt
    buildStmt(uint32_t depth, uint32_t loopDepth, ProcSkel &p)
    {
        Stmt s;
        s.id = nextId_++;
        const double roll = rng_.uniform();
        s.opIdx = uint32_t(rng_.below(std::size(kAluOps)));
        s.useImm = rng_.chance(0.4);
        s.overwrite = rng_.chance(0.3);
        s.imm = rng_.range(-32, 32);
        s.pickA = rng_.next();
        s.pickB = rng_.next();
        s.pickC = rng_.next();
        s.slot = rng_.next();
        s.offset = rng_.next();
        s.calleePick = rng_.next();
        s.trips = uint32_t(1 + rng_.below(spec_.maxTrips));
        s.pattern = patternFor();

        double t = spec_.callDensity;
        const bool compoundOk =
            depth < spec_.depth && nextId_ + 2 < kNodeBudget;
        if (roll < t && callable_ > 0) {
            s.kind = Stmt::Kind::Call;
        } else if (roll < (t += spec_.loadDensity)) {
            s.kind = Stmt::Kind::Load;
        } else if (roll < (t += spec_.storeDensity)) {
            s.kind = Stmt::Kind::Store;
        } else if (roll < (t += spec_.emitDensity)) {
            s.kind = Stmt::Kind::Emit;
        } else if (roll < (t += spec_.ifDensity) && compoundOk) {
            s.kind = Stmt::Kind::If;
            buildRegion(depth + 1, loopDepth, p);
            s.a = std::move(region_);
            buildRegion(depth + 1, loopDepth, p);
            s.b = std::move(region_);
        } else if (roll < (t += spec_.loopDensity) && compoundOk &&
                   loopDepth < spec_.loopDepth) {
            s.kind = Stmt::Kind::Loop;
            buildRegion(depth + 1, loopDepth + 1, p);
            s.a = std::move(region_);
        } else {
            s.kind = Stmt::Kind::Alu;
        }
        return s;
    }

    uint8_t
    patternFor()
    {
        // Draw unconditionally so the stream shape is kind-independent.
        const uint8_t mixed = uint8_t(rng_.below(4));
        switch (spec_.branch) {
          case BranchKind::Random:     return kPatRandom;
          case BranchKind::Tttf:       return kPatTttf;
          case BranchKind::Phased:     return kPatPhased;
          case BranchKind::Correlated: return kPatCorr;
          case BranchKind::Mixed:      return mixed;
        }
        return kPatRandom;
    }

    const GenSpec &spec_;
    Rng rng_;
    uint32_t callable_;
    uint32_t nextId_ = 0;
    std::vector<Stmt> region_;
};

Skeleton
buildSkeleton(const GenSpec &spec)
{
    Skeleton sk;
    for (uint32_t k = 0; k <= spec.procs; ++k)
        sk.procs.push_back(SkeletonBuilder(spec, k).run());
    return sk;
}

/** Edit lookup over one spec, hot in lowering and bound computation. */
class Edits
{
  public:
    explicit Edits(const GenSpec &spec) : spec_(spec) {}

    bool
    stmtDropped(uint32_t proc, uint32_t node) const
    {
        for (const Edit &e : spec_.edits) {
            if (e.kind == Edit::Kind::DropStmt && e.proc == proc &&
                e.node == node)
                return true;
        }
        return false;
    }

    /** Effective trip count: SetTrips overrides win; otherwise the
     *  drawn count scaled by the bound-normalization shift. */
    uint32_t
    tripsFor(uint32_t proc, const Stmt &s, uint32_t tripShift) const
    {
        for (const Edit &e : spec_.edits) {
            if (e.kind == Edit::Kind::SetTrips && e.proc == proc &&
                e.node == s.id)
                return std::clamp(e.trips, 1u, 64u);
        }
        return std::max(1u, s.trips >> tripShift);
    }

  private:
    const GenSpec &spec_;
};

/**
 * Static step bound of one procedure, mirroring the lowering below
 * statement for statement (same edit skips, same call-quota order), so
 * the bound is sound for the program actually emitted.
 */
class BoundCalc
{
  public:
    BoundCalc(const GenSpec &spec, const Skeleton &skel,
              uint32_t tripShift, uint32_t callQuota)
        : spec_(spec), skel_(skel), edits_(spec), tripShift_(tripShift),
          callQuota_(callQuota)
    {}

    /** Bound for the whole program (= one run of main). */
    uint64_t
    program()
    {
        bounds_.clear();
        for (uint32_t k = 0; k <= spec_.procs; ++k)
            bounds_.push_back(proc(k));
        return bounds_.back();
    }

  private:
    uint64_t
    proc(uint32_t k)
    {
        if (spec_.procDropped(k))
            return 2; // ldi + ret
        callsUsed_ = 0;
        // 3 constants + memory base + phase counter + ret.
        return satAdd(6, region(k, skel_.procs[k].body));
    }

    uint64_t
    region(uint32_t k, const std::vector<Stmt> &stmts)
    {
        uint64_t c = 0;
        for (const Stmt &s : stmts)
            c = satAdd(c, stmt(k, s));
        return c;
    }

    uint64_t
    stmt(uint32_t k, const Stmt &s)
    {
        if (edits_.stmtDropped(k, s.id))
            return 0;
        switch (s.kind) {
          case Stmt::Kind::Alu:
          case Stmt::Kind::Load:
          case Stmt::Kind::Store:
          case Stmt::Kind::Emit:
            return 1;
          case Stmt::Kind::Call:
            if (callsUsed_ >= callQuota_)
                return 1; // lowered as plain ALU
            ++callsUsed_;
            return satAdd(1, bounds_[s.calleePick %
                                     (k < spec_.procs ? k : spec_.procs)]);
          case Stmt::Kind::If:
            // cond (<= 3 ops) + brnz + both arms + their jmps.
            return satAdd(6, satAdd(region(k, s.a), region(k, s.b)));
          case Stmt::Kind::Loop: {
            const uint64_t per =
                satAdd(region(k, s.a), 3); // body + sub/cmp/brnz
            return satAdd(2, satMul(edits_.tripsFor(k, s, tripShift_),
                                    per));
          }
        }
        return 1;
    }

    const GenSpec &spec_;
    const Skeleton &skel_;
    Edits edits_;
    uint32_t tripShift_;
    uint64_t callQuota_;
    uint64_t callsUsed_ = 0;
    std::vector<uint64_t> bounds_;
};

/** Phase two: lower the (edited) skeleton to IR. */
class Lowerer
{
  public:
    Lowerer(const GenSpec &spec, const Skeleton &skel, uint32_t tripShift,
            uint32_t callQuota, ir::Program &prog)
        : spec_(spec), skel_(skel), edits_(spec), tripShift_(tripShift),
          callQuota_(callQuota), builder_(prog), prog_(prog)
    {}

    void
    run()
    {
        prog_.memWords = spec_.memWords;
        for (uint32_t k = 0; k <= spec_.procs; ++k) {
            const std::string name =
                k < spec_.procs ? "proc" + std::to_string(k) : "main";
            const ProcId p =
                builder_.newProc(name, skel_.procs[k].nparams);
            if (k == spec_.procs)
                prog_.mainProc = p;
            lowerProc(k);
        }
    }

  private:
    void
    lowerProc(uint32_t k)
    {
        const ProcSkel &ps = skel_.procs[k];
        if (spec_.procDropped(k)) {
            builder_.ret(builder_.ldi(0));
            return;
        }
        vars_.clear();
        for (uint32_t a = 0; a < ps.nparams; ++a)
            vars_.push_back(builder_.param(a));
        for (int64_t c : ps.consts)
            vars_.push_back(builder_.ldi(c));
        memBase_ = builder_.ldi(0);
        phase_ = builder_.ldi(0);
        proc_ = k;
        callsUsed_ = 0;
        lowerRegion(ps.body);
        builder_.ret(pick(ps.retPick));
    }

    RegId
    pick(uint64_t raw) const
    {
        return vars_[raw % vars_.size()];
    }

    void
    note(RegId v, uint64_t slot)
    {
        if (vars_.size() < 12) {
            vars_.push_back(v);
        } else {
            vars_[slot % vars_.size()] = v;
        }
    }

    void
    lowerRegion(const std::vector<Stmt> &stmts)
    {
        // Correlation state is region-local: a conditional's register
        // dominates everything later in the same region, but nothing
        // outside it — reusing across regions could read a register
        // that is undefined on some path.
        RegId last_cond = ir::kNoReg;
        for (const Stmt &s : stmts) {
            if (!edits_.stmtDropped(proc_, s.id))
                lowerStmt(s, last_cond);
        }
    }

    void
    lowerStmt(const Stmt &s, RegId &last_cond)
    {
        switch (s.kind) {
          case Stmt::Kind::Alu:
            lowerAlu(s);
            break;
          case Stmt::Kind::Load: {
            const RegId v = builder_.ld(
                memBase_, int64_t(s.offset % spec_.memWords));
            note(v, s.slot);
            break;
          }
          case Stmt::Kind::Store:
            builder_.st(memBase_, int64_t(s.offset % spec_.memWords),
                        pick(s.pickA));
            break;
          case Stmt::Kind::Emit:
            builder_.emitValue(pick(s.pickA));
            break;
          case Stmt::Kind::Call:
            lowerCall(s);
            break;
          case Stmt::Kind::If:
            lowerIf(s, last_cond);
            break;
          case Stmt::Kind::Loop:
            lowerLoop(s);
            break;
        }
    }

    void
    lowerAlu(const Stmt &s)
    {
        const Opcode op = kAluOps[s.opIdx % std::size(kAluOps)];
        const RegId dst =
            s.overwrite ? pick(s.pickB) : builder_.freshReg();
        if (s.useImm) {
            builder_.aluiTo(op, dst, pick(s.pickA), s.imm);
        } else {
            builder_.aluTo(op, dst, pick(s.pickA), pick(s.pickC));
        }
        note(dst, s.slot);
    }

    void
    lowerCall(const Stmt &s)
    {
        const uint32_t callable =
            proc_ < spec_.procs ? proc_ : spec_.procs;
        if (callable == 0 || callsUsed_ >= callQuota_) {
            // Thinned by the bound normalization: keep a same-shape
            // data op so the region is not simply shorter.
            const RegId dst = builder_.freshReg();
            builder_.aluiTo(Opcode::Add, dst, pick(s.pickA), s.imm);
            note(dst, s.slot);
            return;
        }
        ++callsUsed_;
        const ProcId callee = ProcId(s.calleePick % callable);
        std::vector<RegId> args;
        const uint64_t raw[2] = {s.pickA, s.pickC};
        for (uint32_t a = 0; a < skel_.procs[callee].nparams; ++a)
            args.push_back(pick(raw[a % 2]));
        note(builder_.callValue(callee, std::move(args)), s.slot);
    }

    void
    lowerIf(const Stmt &s, RegId &last_cond)
    {
        RegId cond = ir::kNoReg;
        switch (s.pattern) {
          case kPatTttf: {
            // Periodic taken/not-taken: true period-1 times out of
            // every `period` executions.
            builder_.aluiTo(Opcode::Add, phase_, phase_, 1);
            const RegId r = builder_.alui(Opcode::Rem, phase_,
                                          int64_t(spec_.period));
            cond = builder_.alui(Opcode::CmpLt, r,
                                 int64_t(spec_.period) - 1);
            break;
          }
          case kPatPhased:
            // True for the first 2*period executions, false after.
            builder_.aluiTo(Opcode::Add, phase_, phase_, 1);
            cond = builder_.alui(Opcode::CmpLt, phase_,
                                 int64_t(spec_.period) * 2);
            break;
          case kPatCorr:
            if (last_cond != ir::kNoReg) {
                cond = last_cond; // perfectly correlated repeat
                break;
            }
            [[fallthrough]];
          case kPatRandom:
          default:
            cond = builder_.alui(Opcode::And, pick(s.pickA),
                                 int64_t(1 + s.offset % 7));
            break;
        }
        last_cond = cond;

        const BlockId then_b = builder_.newBlock();
        const BlockId else_b = builder_.newBlock();
        const BlockId join_b = builder_.newBlock();
        builder_.brnz(cond, then_b, else_b);

        // Both arms see the same incoming pool; registers defined in
        // only one arm must not escape it.
        const std::vector<RegId> saved = vars_;
        builder_.setBlock(then_b);
        lowerRegion(s.a);
        builder_.jmp(join_b);
        vars_ = saved;
        builder_.setBlock(else_b);
        lowerRegion(s.b);
        builder_.jmp(join_b);
        vars_ = saved;
        builder_.setBlock(join_b);
    }

    void
    lowerLoop(const Stmt &s)
    {
        const uint32_t trips = edits_.tripsFor(proc_, s, tripShift_);
        const RegId counter = builder_.freshReg();
        builder_.ldiTo(counter, int64_t(trips));
        const BlockId head = builder_.newBlock();
        const BlockId exit_b = builder_.newBlock();
        builder_.jmp(head);

        const std::vector<RegId> saved = vars_;
        builder_.setBlock(head);
        lowerRegion(s.a);
        vars_ = saved; // loop-carried defs stay within the body
        builder_.aluiTo(Opcode::Sub, counter, counter, 1);
        const RegId more = builder_.alui(Opcode::CmpGt, counter, 0);
        builder_.brnz(more, head, exit_b);
        builder_.setBlock(exit_b);
    }

    const GenSpec &spec_;
    const Skeleton &skel_;
    Edits edits_;
    uint32_t tripShift_;
    uint64_t callQuota_;
    IrBuilder builder_;
    ir::Program &prog_;

    std::vector<RegId> vars_;
    RegId memBase_ = ir::kNoReg;
    RegId phase_ = ir::kNoReg;
    uint32_t proc_ = 0;
    uint64_t callsUsed_ = 0;
};

interp::ProgramInput
makeInput(const GenSpec &spec, uint32_t nparams, uint64_t salt)
{
    // Inputs draw from their own streams: reduction edits and shape
    // knobs never change the data a given seed runs on.
    Rng rng(mix(spec.seed, salt));
    interp::ProgramInput in;
    for (uint32_t a = 0; a < nparams; ++a)
        in.mainArgs.push_back(rng.range(-64, 64));
    for (uint64_t w = 0; w < spec.memWords; ++w)
        in.memImage.push_back(rng.range(-100, 100));
    return in;
}

void
collectNodes(const GenSpec &spec, uint32_t proc,
             const std::vector<Stmt> &stmts, const Edits &edits,
             uint32_t tripShift, std::vector<NodeInfo> &out)
{
    for (const Stmt &s : stmts) {
        if (edits.stmtDropped(proc, s.id))
            continue;
        NodeInfo n;
        n.proc = proc;
        n.node = s.id;
        n.kind = stmtKindName(s.kind);
        n.isLoop = s.kind == Stmt::Kind::Loop;
        if (n.isLoop)
            n.trips = edits.tripsFor(proc, s, tripShift);
        n.subtreeSize = 1;
        const size_t at = out.size();
        out.push_back(n);
        collectNodes(spec, proc, s.a, edits, tripShift, out);
        collectNodes(spec, proc, s.b, edits, tripShift, out);
        out[at].subtreeSize =
            uint32_t(out.size() - at); // live descendants + self
    }
}

/** Pick the (tripShift, callQuota) normalization that fits the bound. */
void
normalizeBound(const GenSpec &spec, const Skeleton &skel,
               uint32_t &tripShift, uint32_t &callQuota, uint64_t &bound)
{
    tripShift = 0;
    callQuota = UINT32_MAX;
    for (; tripShift <= 6; ++tripShift) {
        bound = BoundCalc(spec, skel, tripShift, callQuota).program();
        if (bound <= kMaxGenSteps)
            return;
    }
    tripShift = 6;
    for (uint32_t q : {64u, 32u, 16u, 8u, 4u, 2u, 1u, 0u}) {
        callQuota = q;
        bound = BoundCalc(spec, skel, tripShift, callQuota).program();
        if (bound <= kMaxGenSteps)
            return;
    }
    // Unreachable: with trips >= 1 and no calls the bound is linear in
    // the node budget, far under the ceiling.
    ps_assert(bound <= kMaxGenSteps);
}

} // namespace

Workload
generate(const GenSpec &rawSpec)
{
    Workload w;
    w.spec = rawSpec.normalized();
    w.name = strfmt("gen-%llu", (unsigned long long)w.spec.seed);

    const Skeleton skel = buildSkeleton(w.spec);
    normalizeBound(w.spec, skel, w.tripShift, w.callQuota, w.stepBound);
    Lowerer(w.spec, skel, w.tripShift, w.callQuota, w.program).run();

    const uint32_t nargs = skel.procs[w.spec.procs].nparams;
    w.train = makeInput(w.spec, nargs, 0x7261696eULL);
    w.test = makeInput(w.spec, nargs, 0x74657374ULL);
    return w;
}

std::vector<NodeInfo>
listNodes(const GenSpec &rawSpec)
{
    const GenSpec spec = rawSpec.normalized();
    const Skeleton skel = buildSkeleton(spec);
    uint32_t tripShift = 0, callQuota = UINT32_MAX;
    uint64_t bound = 0;
    normalizeBound(spec, skel, tripShift, callQuota, bound);
    const Edits edits(spec);
    std::vector<NodeInfo> out;
    for (uint32_t k = 0; k <= spec.procs; ++k) {
        if (!spec.procDropped(k))
            collectNodes(spec, k, skel.procs[k].body, edits, tripShift,
                         out);
    }
    return out;
}

uint32_t
liveProcCount(const GenSpec &rawSpec)
{
    const GenSpec spec = rawSpec.normalized();
    uint32_t live = 0;
    for (uint32_t k = 0; k <= spec.procs; ++k)
        live += spec.procDropped(k) ? 0 : 1;
    return live;
}

} // namespace pathsched::gen
