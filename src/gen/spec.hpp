/**
 * @file
 * Generator specification: the seed plus every shape knob of one
 * generated workload, round-trippable through a one-line text form.
 *
 * A GenSpec fully determines a generated program (gen/generator.hpp):
 * equal specs produce byte-identical IR in every process.  The text
 * form is the currency of the fuzz driver — journals, corpus files and
 * --replay all carry specs, never programs — so a failure reproduces
 * from one short line.
 *
 * Spec grammar (comma-separated key=value; every key optional):
 *
 *   seed=7,procs=3,depth=3,loopdepth=2,stmts=5,trips=6,mem=64,
 *   calls=0.10,loads=0.10,stores=0.10,emits=0.07,ifs=0.16,loops=0.12,
 *   branch=mixed,period=4
 *
 *   branch   random | tttf | phased | corr | mixed — the branch
 *            character of generated conditionals (paper §4: the micro
 *            benchmarks alt/ph/corr are exactly these characters)
 *   period   TTTF period / phased split parameter
 *
 * Reduction edits (appended by the delta debugger, repeatable):
 *
 *   drop=p2          stub procedure 2 to `ret 0` (its id and arity
 *                    survive, so callers still link)
 *   drop=p1.n7       drop the statement subtree with preorder id 7 in
 *                    procedure 1's skeleton
 *   settrips=p0.n3:1 override the trip count of loop node 3 in proc 0
 *
 * Procedure indices 0..procs-1 are the helper procedures; index
 * `procs` is main.  Node ids are preorder positions in the *unedited*
 * skeleton, so they stay stable as edits accumulate.
 */

#ifndef PATHSCHED_GEN_SPEC_HPP
#define PATHSCHED_GEN_SPEC_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace pathsched::gen {

/** Branch character of generated conditionals. */
enum class BranchKind
{
    Random,     ///< data-dependent, profile-unfriendly
    Tttf,       ///< periodic taken/not-taken (the paper's "alt")
    Phased,     ///< true for a prefix of executions, then false ("ph")
    Correlated, ///< repeats the previous conditional's outcome ("corr")
    Mixed,      ///< each conditional draws one of the above
};

const char *branchKindName(BranchKind kind);
bool parseBranchKind(const std::string &text, BranchKind &out);

/** One reduction edit (see the file comment for the text forms). */
struct Edit
{
    enum class Kind { DropProc, DropStmt, SetTrips };
    Kind kind = Kind::DropProc;
    uint32_t proc = 0;
    uint32_t node = 0;  ///< preorder id (DropStmt / SetTrips)
    uint32_t trips = 1; ///< SetTrips only

    bool operator==(const Edit &) const = default;
};

/** Every knob of one generated workload. */
struct GenSpec
{
    uint64_t seed = 1;
    uint32_t procs = 3;    ///< helper procedures (main is extra)
    uint32_t depth = 3;    ///< max if/loop nesting
    uint32_t loopDepth = 2;///< max loop nesting (<= depth)
    uint32_t stmts = 5;    ///< max statements per region
    uint32_t maxTrips = 6; ///< loop trips drawn from 1..maxTrips
    uint64_t memWords = 64;
    double callDensity = 0.10;
    double loadDensity = 0.10;
    double storeDensity = 0.10;
    double emitDensity = 0.07;
    double ifDensity = 0.16;
    double loopDensity = 0.12;
    BranchKind branch = BranchKind::Mixed;
    uint32_t period = 4;
    std::vector<Edit> edits;

    bool operator==(const GenSpec &) const = default;

    /** Canonical one-line text form; parse() inverts it exactly for a
     *  normalized spec. */
    std::string toString() const;

    /** Parse the grammar above.  Unknown keys and malformed values are
     *  typed errors, never panics — spec text arrives from files and
     *  command lines. */
    static bool parse(const std::string &text, GenSpec &out,
                      std::string &error);

    /** A copy with every knob clamped into its documented range and
     *  densities quantized so toString() round-trips bit-exactly.
     *  generate() normalizes on entry; normalizing twice is
     *  idempotent. */
    GenSpec normalized() const;

    /** Total procedures including main. */
    uint32_t procCount() const { return procs + 1; }

    /** True when @p proc is stubbed by a DropProc edit. */
    bool procDropped(uint32_t proc) const;
};

} // namespace pathsched::gen

#endif // PATHSCHED_GEN_SPEC_HPP
