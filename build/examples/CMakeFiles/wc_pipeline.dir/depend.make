# Empty dependencies file for wc_pipeline.
# This may be replaced when dependencies are built.
