file(REMOVE_RECURSE
  "CMakeFiles/wc_pipeline.dir/wc_pipeline.cpp.o"
  "CMakeFiles/wc_pipeline.dir/wc_pipeline.cpp.o.d"
  "wc_pipeline"
  "wc_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wc_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
