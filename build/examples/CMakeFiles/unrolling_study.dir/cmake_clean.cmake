file(REMOVE_RECURSE
  "CMakeFiles/unrolling_study.dir/unrolling_study.cpp.o"
  "CMakeFiles/unrolling_study.dir/unrolling_study.cpp.o.d"
  "unrolling_study"
  "unrolling_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unrolling_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
