# Empty compiler generated dependencies file for unrolling_study.
# This may be replaced when dependencies are built.
