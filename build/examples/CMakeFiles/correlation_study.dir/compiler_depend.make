# Empty compiler generated dependencies file for correlation_study.
# This may be replaced when dependencies are built.
