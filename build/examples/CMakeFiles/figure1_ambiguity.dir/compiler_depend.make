# Empty compiler generated dependencies file for figure1_ambiguity.
# This may be replaced when dependencies are built.
