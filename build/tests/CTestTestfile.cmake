# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/interp_test[1]_include.cmake")
include("/root/repo/build/tests/profile_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/icache_test[1]_include.cmake")
include("/root/repo/build/tests/layout_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/depgraph_test[1]_include.cmake")
include("/root/repo/build/tests/random_pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/form_test[1]_include.cmake")
include("/root/repo/build/tests/materialize_test[1]_include.cmake")
include("/root/repo/build/tests/regalloc_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/reproduction_test[1]_include.cmake")
include("/root/repo/build/tests/diagnostics_test[1]_include.cmake")
include("/root/repo/build/tests/smoke_test[1]_include.cmake")
