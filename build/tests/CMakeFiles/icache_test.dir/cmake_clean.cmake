file(REMOVE_RECURSE
  "CMakeFiles/icache_test.dir/icache_test.cpp.o"
  "CMakeFiles/icache_test.dir/icache_test.cpp.o.d"
  "icache_test"
  "icache_test.pdb"
  "icache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
