# Empty dependencies file for form_test.
# This may be replaced when dependencies are built.
