file(REMOVE_RECURSE
  "CMakeFiles/form_test.dir/form_test.cpp.o"
  "CMakeFiles/form_test.dir/form_test.cpp.o.d"
  "form_test"
  "form_test.pdb"
  "form_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/form_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
