file(REMOVE_RECURSE
  "CMakeFiles/ps_testutil.dir/testutil.cpp.o"
  "CMakeFiles/ps_testutil.dir/testutil.cpp.o.d"
  "libps_testutil.a"
  "libps_testutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_testutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
