
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/testutil.cpp" "tests/CMakeFiles/ps_testutil.dir/testutil.cpp.o" "gcc" "tests/CMakeFiles/ps_testutil.dir/testutil.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/ps_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/ps_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ps_support.dir/DependInfo.cmake"
  "/root/repo/build/src/icache/CMakeFiles/ps_icache.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/ps_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ps_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
