# Empty dependencies file for ps_testutil.
# This may be replaced when dependencies are built.
