file(REMOVE_RECURSE
  "libps_testutil.a"
)
