# Empty dependencies file for pathsched_cli.
# This may be replaced when dependencies are built.
