file(REMOVE_RECURSE
  "CMakeFiles/pathsched_cli.dir/pathsched_cli.cpp.o"
  "CMakeFiles/pathsched_cli.dir/pathsched_cli.cpp.o.d"
  "pathsched_cli"
  "pathsched_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pathsched_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
