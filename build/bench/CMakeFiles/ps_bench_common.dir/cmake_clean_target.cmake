file(REMOVE_RECURSE
  "libps_bench_common.a"
)
