file(REMOVE_RECURSE
  "CMakeFiles/ps_bench_common.dir/common.cpp.o"
  "CMakeFiles/ps_bench_common.dir/common.cpp.o.d"
  "libps_bench_common.a"
  "libps_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
