# Empty dependencies file for ps_bench_common.
# This may be replaced when dependencies are built.
