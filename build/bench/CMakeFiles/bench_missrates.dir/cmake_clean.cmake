file(REMOVE_RECURSE
  "CMakeFiles/bench_missrates.dir/bench_missrates.cpp.o"
  "CMakeFiles/bench_missrates.dir/bench_missrates.cpp.o.d"
  "bench_missrates"
  "bench_missrates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_missrates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
