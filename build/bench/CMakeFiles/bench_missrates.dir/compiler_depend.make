# Empty compiler generated dependencies file for bench_missrates.
# This may be replaced when dependencies are built.
