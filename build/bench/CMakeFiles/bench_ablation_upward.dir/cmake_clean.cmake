file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_upward.dir/bench_ablation_upward.cpp.o"
  "CMakeFiles/bench_ablation_upward.dir/bench_ablation_upward.cpp.o.d"
  "bench_ablation_upward"
  "bench_ablation_upward.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_upward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
