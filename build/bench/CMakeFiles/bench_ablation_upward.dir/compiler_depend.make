# Empty compiler generated dependencies file for bench_ablation_upward.
# This may be replaced when dependencies are built.
