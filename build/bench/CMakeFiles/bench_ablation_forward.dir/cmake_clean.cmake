file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_forward.dir/bench_ablation_forward.cpp.o"
  "CMakeFiles/bench_ablation_forward.dir/bench_ablation_forward.cpp.o.d"
  "bench_ablation_forward"
  "bench_ablation_forward.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_forward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
