# Empty dependencies file for bench_ablation_forward.
# This may be replaced when dependencies are built.
