
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_forward.cpp" "bench/CMakeFiles/bench_ablation_forward.dir/bench_ablation_forward.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_forward.dir/bench_ablation_forward.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/ps_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/ps_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/ps_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/form/CMakeFiles/ps_form.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/ps_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/regalloc/CMakeFiles/ps_regalloc.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/ps_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ps_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/ps_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/ps_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ps_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ps_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/icache/CMakeFiles/ps_icache.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ps_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
