# Empty dependencies file for ps_profile.
# This may be replaced when dependencies are built.
