file(REMOVE_RECURSE
  "CMakeFiles/ps_profile.dir/edge_profile.cpp.o"
  "CMakeFiles/ps_profile.dir/edge_profile.cpp.o.d"
  "CMakeFiles/ps_profile.dir/path_profile.cpp.o"
  "CMakeFiles/ps_profile.dir/path_profile.cpp.o.d"
  "CMakeFiles/ps_profile.dir/serialize.cpp.o"
  "CMakeFiles/ps_profile.dir/serialize.cpp.o.d"
  "libps_profile.a"
  "libps_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
