file(REMOVE_RECURSE
  "libps_profile.a"
)
