
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/compact.cpp" "src/sched/CMakeFiles/ps_sched.dir/compact.cpp.o" "gcc" "src/sched/CMakeFiles/ps_sched.dir/compact.cpp.o.d"
  "/root/repo/src/sched/depgraph.cpp" "src/sched/CMakeFiles/ps_sched.dir/depgraph.cpp.o" "gcc" "src/sched/CMakeFiles/ps_sched.dir/depgraph.cpp.o.d"
  "/root/repo/src/sched/exit_live.cpp" "src/sched/CMakeFiles/ps_sched.dir/exit_live.cpp.o" "gcc" "src/sched/CMakeFiles/ps_sched.dir/exit_live.cpp.o.d"
  "/root/repo/src/sched/local_opt.cpp" "src/sched/CMakeFiles/ps_sched.dir/local_opt.cpp.o" "gcc" "src/sched/CMakeFiles/ps_sched.dir/local_opt.cpp.o.d"
  "/root/repo/src/sched/renamer.cpp" "src/sched/CMakeFiles/ps_sched.dir/renamer.cpp.o" "gcc" "src/sched/CMakeFiles/ps_sched.dir/renamer.cpp.o.d"
  "/root/repo/src/sched/scheduler.cpp" "src/sched/CMakeFiles/ps_sched.dir/scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/ps_sched.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/ps_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ps_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/ps_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ps_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
