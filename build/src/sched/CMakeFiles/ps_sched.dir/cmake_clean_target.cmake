file(REMOVE_RECURSE
  "libps_sched.a"
)
