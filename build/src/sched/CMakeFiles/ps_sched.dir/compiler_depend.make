# Empty compiler generated dependencies file for ps_sched.
# This may be replaced when dependencies are built.
