file(REMOVE_RECURSE
  "CMakeFiles/ps_sched.dir/compact.cpp.o"
  "CMakeFiles/ps_sched.dir/compact.cpp.o.d"
  "CMakeFiles/ps_sched.dir/depgraph.cpp.o"
  "CMakeFiles/ps_sched.dir/depgraph.cpp.o.d"
  "CMakeFiles/ps_sched.dir/exit_live.cpp.o"
  "CMakeFiles/ps_sched.dir/exit_live.cpp.o.d"
  "CMakeFiles/ps_sched.dir/local_opt.cpp.o"
  "CMakeFiles/ps_sched.dir/local_opt.cpp.o.d"
  "CMakeFiles/ps_sched.dir/renamer.cpp.o"
  "CMakeFiles/ps_sched.dir/renamer.cpp.o.d"
  "CMakeFiles/ps_sched.dir/scheduler.cpp.o"
  "CMakeFiles/ps_sched.dir/scheduler.cpp.o.d"
  "libps_sched.a"
  "libps_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
