
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/interpreters.cpp" "src/workloads/CMakeFiles/ps_workloads.dir/interpreters.cpp.o" "gcc" "src/workloads/CMakeFiles/ps_workloads.dir/interpreters.cpp.o.d"
  "/root/repo/src/workloads/micro.cpp" "src/workloads/CMakeFiles/ps_workloads.dir/micro.cpp.o" "gcc" "src/workloads/CMakeFiles/ps_workloads.dir/micro.cpp.o.d"
  "/root/repo/src/workloads/spec_like.cpp" "src/workloads/CMakeFiles/ps_workloads.dir/spec_like.cpp.o" "gcc" "src/workloads/CMakeFiles/ps_workloads.dir/spec_like.cpp.o.d"
  "/root/repo/src/workloads/textutil.cpp" "src/workloads/CMakeFiles/ps_workloads.dir/textutil.cpp.o" "gcc" "src/workloads/CMakeFiles/ps_workloads.dir/textutil.cpp.o.d"
  "/root/repo/src/workloads/workloads.cpp" "src/workloads/CMakeFiles/ps_workloads.dir/workloads.cpp.o" "gcc" "src/workloads/CMakeFiles/ps_workloads.dir/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/ps_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/ps_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ps_support.dir/DependInfo.cmake"
  "/root/repo/build/src/icache/CMakeFiles/ps_icache.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/ps_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ps_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
