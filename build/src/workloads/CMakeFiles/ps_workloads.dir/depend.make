# Empty dependencies file for ps_workloads.
# This may be replaced when dependencies are built.
