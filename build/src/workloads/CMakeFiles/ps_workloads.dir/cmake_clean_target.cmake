file(REMOVE_RECURSE
  "libps_workloads.a"
)
