file(REMOVE_RECURSE
  "CMakeFiles/ps_workloads.dir/interpreters.cpp.o"
  "CMakeFiles/ps_workloads.dir/interpreters.cpp.o.d"
  "CMakeFiles/ps_workloads.dir/micro.cpp.o"
  "CMakeFiles/ps_workloads.dir/micro.cpp.o.d"
  "CMakeFiles/ps_workloads.dir/spec_like.cpp.o"
  "CMakeFiles/ps_workloads.dir/spec_like.cpp.o.d"
  "CMakeFiles/ps_workloads.dir/textutil.cpp.o"
  "CMakeFiles/ps_workloads.dir/textutil.cpp.o.d"
  "CMakeFiles/ps_workloads.dir/workloads.cpp.o"
  "CMakeFiles/ps_workloads.dir/workloads.cpp.o.d"
  "libps_workloads.a"
  "libps_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
