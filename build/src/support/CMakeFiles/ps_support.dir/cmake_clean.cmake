file(REMOVE_RECURSE
  "CMakeFiles/ps_support.dir/logging.cpp.o"
  "CMakeFiles/ps_support.dir/logging.cpp.o.d"
  "CMakeFiles/ps_support.dir/rng.cpp.o"
  "CMakeFiles/ps_support.dir/rng.cpp.o.d"
  "CMakeFiles/ps_support.dir/statistics.cpp.o"
  "CMakeFiles/ps_support.dir/statistics.cpp.o.d"
  "CMakeFiles/ps_support.dir/strutil.cpp.o"
  "CMakeFiles/ps_support.dir/strutil.cpp.o.d"
  "libps_support.a"
  "libps_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
