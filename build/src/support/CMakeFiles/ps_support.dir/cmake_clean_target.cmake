file(REMOVE_RECURSE
  "libps_support.a"
)
