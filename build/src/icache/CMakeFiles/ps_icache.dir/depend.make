# Empty dependencies file for ps_icache.
# This may be replaced when dependencies are built.
