file(REMOVE_RECURSE
  "CMakeFiles/ps_icache.dir/icache.cpp.o"
  "CMakeFiles/ps_icache.dir/icache.cpp.o.d"
  "libps_icache.a"
  "libps_icache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_icache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
