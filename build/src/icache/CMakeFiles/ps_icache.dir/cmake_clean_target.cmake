file(REMOVE_RECURSE
  "libps_icache.a"
)
