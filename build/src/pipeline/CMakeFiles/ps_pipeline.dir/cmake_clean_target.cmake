file(REMOVE_RECURSE
  "libps_pipeline.a"
)
