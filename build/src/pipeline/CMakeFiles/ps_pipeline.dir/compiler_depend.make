# Empty compiler generated dependencies file for ps_pipeline.
# This may be replaced when dependencies are built.
