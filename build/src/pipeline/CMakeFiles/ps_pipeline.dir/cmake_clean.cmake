file(REMOVE_RECURSE
  "CMakeFiles/ps_pipeline.dir/pipeline.cpp.o"
  "CMakeFiles/ps_pipeline.dir/pipeline.cpp.o.d"
  "libps_pipeline.a"
  "libps_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
