file(REMOVE_RECURSE
  "CMakeFiles/ps_ir.dir/builder.cpp.o"
  "CMakeFiles/ps_ir.dir/builder.cpp.o.d"
  "CMakeFiles/ps_ir.dir/clone.cpp.o"
  "CMakeFiles/ps_ir.dir/clone.cpp.o.d"
  "CMakeFiles/ps_ir.dir/instruction.cpp.o"
  "CMakeFiles/ps_ir.dir/instruction.cpp.o.d"
  "CMakeFiles/ps_ir.dir/printer.cpp.o"
  "CMakeFiles/ps_ir.dir/printer.cpp.o.d"
  "CMakeFiles/ps_ir.dir/procedure.cpp.o"
  "CMakeFiles/ps_ir.dir/procedure.cpp.o.d"
  "CMakeFiles/ps_ir.dir/verifier.cpp.o"
  "CMakeFiles/ps_ir.dir/verifier.cpp.o.d"
  "libps_ir.a"
  "libps_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
