file(REMOVE_RECURSE
  "CMakeFiles/ps_layout.dir/code_layout.cpp.o"
  "CMakeFiles/ps_layout.dir/code_layout.cpp.o.d"
  "CMakeFiles/ps_layout.dir/pettis_hansen.cpp.o"
  "CMakeFiles/ps_layout.dir/pettis_hansen.cpp.o.d"
  "libps_layout.a"
  "libps_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
