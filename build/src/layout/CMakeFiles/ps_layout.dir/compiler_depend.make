# Empty compiler generated dependencies file for ps_layout.
# This may be replaced when dependencies are built.
