file(REMOVE_RECURSE
  "libps_layout.a"
)
