file(REMOVE_RECURSE
  "libps_form.a"
)
