file(REMOVE_RECURSE
  "CMakeFiles/ps_form.dir/enlarge.cpp.o"
  "CMakeFiles/ps_form.dir/enlarge.cpp.o.d"
  "CMakeFiles/ps_form.dir/form.cpp.o"
  "CMakeFiles/ps_form.dir/form.cpp.o.d"
  "CMakeFiles/ps_form.dir/materialize.cpp.o"
  "CMakeFiles/ps_form.dir/materialize.cpp.o.d"
  "CMakeFiles/ps_form.dir/select.cpp.o"
  "CMakeFiles/ps_form.dir/select.cpp.o.d"
  "libps_form.a"
  "libps_form.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_form.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
