# Empty dependencies file for ps_form.
# This may be replaced when dependencies are built.
