# Empty compiler generated dependencies file for ps_regalloc.
# This may be replaced when dependencies are built.
