file(REMOVE_RECURSE
  "CMakeFiles/ps_regalloc.dir/linear_scan.cpp.o"
  "CMakeFiles/ps_regalloc.dir/linear_scan.cpp.o.d"
  "libps_regalloc.a"
  "libps_regalloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_regalloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
