
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/regalloc/linear_scan.cpp" "src/regalloc/CMakeFiles/ps_regalloc.dir/linear_scan.cpp.o" "gcc" "src/regalloc/CMakeFiles/ps_regalloc.dir/linear_scan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/ps_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ps_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/ps_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ps_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
