# Empty compiler generated dependencies file for ps_interp.
# This may be replaced when dependencies are built.
