file(REMOVE_RECURSE
  "CMakeFiles/ps_analysis.dir/callgraph.cpp.o"
  "CMakeFiles/ps_analysis.dir/callgraph.cpp.o.d"
  "CMakeFiles/ps_analysis.dir/dominators.cpp.o"
  "CMakeFiles/ps_analysis.dir/dominators.cpp.o.d"
  "CMakeFiles/ps_analysis.dir/liveness.cpp.o"
  "CMakeFiles/ps_analysis.dir/liveness.cpp.o.d"
  "CMakeFiles/ps_analysis.dir/loops.cpp.o"
  "CMakeFiles/ps_analysis.dir/loops.cpp.o.d"
  "libps_analysis.a"
  "libps_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
