file(REMOVE_RECURSE
  "libps_analysis.a"
)
