/**
 * @file
 * Crash-isolated batch driver (docs/batch.md).
 *
 * Runs each (workload x config) task as its own pathsched_cli
 * subprocess, so one wedged or crashing task costs that task, never
 * the suite: a per-task wall-clock timeout kills the child (SIGKILL),
 * failures retry a bounded number of times with doubling backoff, and
 * every task transition is appended to a JSONL journal that is
 * flushed and fsync'd per line.  Killing the *runner* mid-suite loses
 * nothing: rerunning with --resume replays the journal and skips every
 * task that already completed.
 *
 * Examples:
 *   pathsched_batch --workloads wc,cmp --configs BB,P4 --jobs 2
 *   pathsched_batch --task-timeout-ms 60000 --retries 2 \
 *       --journal batch.jsonl --outdir reports -- --icache
 *   pathsched_batch --resume --journal batch.jsonl
 *
 * SIGTERM/SIGINT stop the suite gracefully: running children are
 * killed and reaped, the abort is journaled (flushed + fsync'd, so the
 * journal never ends in a torn line), and the runner exits 4 — a rerun
 * with --resume picks up exactly the unfinished tasks.
 *
 * Journal writes go through the vio seam (support/vio.hpp, label
 * "journal") and every write and fsync result is checked: if the
 * journal itself cannot be made durable, the runner kills its
 * children, best-effort appends a {"event":"suite-abort",
 * "reason":"io-error"} record, and exits 5 — it never keeps running
 * with an unsynced journal tail that a crash would silently lose.
 * The journal stays resumable: --resume re-runs whatever has no
 * durable "done" line.
 *
 * Exit codes: 0 = every task ok, 1 = user/configuration error,
 * 2 = every task completed but some degraded (child exit 2),
 * 3 = at least one task failed permanently (all attempts exhausted),
 * 4 = interrupted by SIGTERM/SIGINT (journal clean; resume to finish),
 * 5 = journal I/O failure (suite aborted; resume to finish).
 */

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "pipeline/backend.hpp"
#include "support/journal.hpp"
#include "support/logging.hpp"
#include "support/strutil.hpp"
#include "support/vio.hpp"
#include "workloads/workloads.hpp"

using namespace pathsched;

namespace {

using Clock = std::chrono::steady_clock;

const char kJournalSchema[] = "pathsched.batch.v1";

void
usage()
{
    std::printf(
        "usage: pathsched_batch [options] [-- cli-args...]\n"
        "  --cli PATH              pathsched_cli binary (default: next\n"
        "                          to this executable)\n"
        "  --workloads A,B|all     workloads to run (default: all)\n"
        "  --configs A,B|all       configs to run (default: all)\n"
        "  --jobs N                concurrent tasks (default 1)\n"
        "  --task-timeout-ms N     kill a task after N ms (0 = never)\n"
        "  --retries N             extra attempts per failed task\n"
        "                          (default 0)\n"
        "  --backoff-ms N          first retry delay, doubling per\n"
        "                          attempt (default 100)\n"
        "  --journal FILE          JSONL journal (default\n"
        "                          batch_journal.jsonl)\n"
        "  --resume                skip tasks the journal already shows\n"
        "                          completed (ok or degraded)\n"
        "  --outdir DIR            write each task's JSON report to\n"
        "                          DIR/<workload>_<config>.json\n"
        "  --threads N             forward --threads N to every child\n"
        "                          (per-child worker threads)\n"
        "  --exec-policy P         forward --exec-policy P (static,\n"
        "                          dynamic or steal)\n"
        "  --cache-dir DIR         forward --cache-dir DIR so all\n"
        "                          children share one on-disk stage\n"
        "                          cache\n"
        "  --io-inject SPEC        deterministic disk-fault injection\n"
        "                          on the journal (docs/robustness.md)\n"
        "  --io-inject-seed N      seed for prob= fault selectors\n"
        "  everything after '--' is passed through to pathsched_cli\n"
        "\n"
        "exit codes: 0 all ok; 1 user error; 2 completed with\n"
        "degradations; 3 at least one task failed permanently;\n"
        "4 interrupted (SIGTERM/SIGINT; rerun with --resume);\n"
        "5 journal I/O failure (rerun with --resume)\n");
}

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

/** One (workload, config) unit of work. */
struct Task
{
    std::string workload;
    std::string config;
    int attempts = 0;       ///< attempts started so far
    bool done = false;
    bool skipped = false;   ///< completed in a previous run (--resume)
    std::string outcome;    ///< "ok", "degraded", "failed", "timeout",
                            ///< "crashed"
    Clock::time_point notBefore = Clock::time_point::min();

    std::string name() const { return workload + "/" + config; }
};

/** A live child process. */
struct Running
{
    pid_t pid = -1;
    size_t taskIdx = 0;
    Clock::time_point start;
    bool killed = false; ///< we timed it out with SIGKILL
};

uint64_t
epochSeconds()
{
    return uint64_t(time(nullptr));
}

/** Set by the SIGTERM/SIGINT handler; the scheduler loop polls it. */
volatile sig_atomic_t g_stop_signal = 0;

extern "C" void
onStopSignal(int sig)
{
    g_stop_signal = sig;
}

/** Install @p handler for SIGTERM and SIGINT (no SA_RESTART, so the
 *  scheduler's usleep wakes immediately). */
void
installStopHandlers()
{
    struct sigaction sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_handler = onStopSignal;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);
}

/** Tasks whose most recent "done" event completed (ok or degraded).
 *  Lines failing their CRC (torn writes) are skipped and counted in
 *  @p corrupt_lines rather than trusted or fatal. */
std::map<std::string, std::string>
completedInJournal(const std::string &path, size_t &corrupt_lines)
{
    std::map<std::string, std::string> last; // task -> last done outcome
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        if (!crcLineOk(line)) {
            ++corrupt_lines;
            std::fprintf(stderr,
                         "journal: skipping corrupt line (%zu bytes): "
                         "%.40s...\n",
                         line.size(), line.c_str());
            continue;
        }
        std::string event, task, outcome;
        if (!jsonField(line, "event", event) || event != "done")
            continue;
        if (!jsonField(line, "task", task) ||
            !jsonField(line, "outcome", outcome))
            continue;
        last[task] = outcome;
    }
    std::map<std::string, std::string> completed;
    for (const auto &[task, outcome] : last) {
        if (outcome == "ok" || outcome == "degraded")
            completed[task] = outcome;
    }
    return completed;
}

/** Per-task executor accounting pulled from the child's JSON report. */
struct ExecSummary
{
    bool present = false;
    uint64_t threads = 0;    ///< max across the task's runs
    uint64_t tasks = 0;      ///< summed across the task's runs
    uint64_t steals = 0;
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
};

/**
 * Sum the "executor" blocks of every run in the child's report file.
 * Best-effort: a missing or old-schema report just leaves the summary
 * absent — the journal line then simply has no executor member.
 */
ExecSummary
readExecSummary(const std::string &report_path)
{
    ExecSummary s;
    std::ifstream in(report_path, std::ios::binary);
    if (!in)
        return s;
    std::string doc((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    const std::string needle = "\"executor\":"; // value may be spaced
    for (size_t pos = doc.find(needle); pos != std::string::npos;
         pos = doc.find(needle, pos + 1)) {
        const size_t open = doc.find('{', pos + needle.size());
        if (open == std::string::npos)
            break;
        const size_t close = doc.find('}', open);
        if (close == std::string::npos)
            break;
        const std::string block = doc.substr(open, close - open + 1);
        // The stat registry's "executor" subtree also matches the
        // needle; only the per-run block carries a "policy" member.
        if (block.find("\"policy\"") == std::string::npos)
            continue;
        std::string v;
        auto num = [&](const char *key) -> uint64_t {
            // stoull skips the pretty-printer's leading space.
            return jsonField(block, key, v) ? std::stoull(v) : 0;
        };
        s.present = true;
        s.threads = std::max(s.threads, num("threads"));
        s.tasks += num("tasks");
        s.steals += num("steals");
        s.cacheHits += num("cacheHits");
        s.cacheMisses += num("cacheMisses");
    }
    return s;
}

/** Directory of argv[0], for the default --cli path. */
std::string
siblingCli(const char *argv0)
{
    std::string s(argv0);
    const size_t slash = s.rfind('/');
    if (slash == std::string::npos)
        return "pathsched_cli";
    return s.substr(0, slash + 1) + "pathsched_cli";
}

pid_t
spawnTask(const std::string &cli, const Task &t,
          const std::string &outdir,
          const std::vector<std::string> &passthrough)
{
    std::vector<std::string> args = {cli, "--workload", t.workload,
                                     "--config", t.config};
    if (!outdir.empty()) {
        args.push_back("--json");
        args.push_back(outdir + "/" + t.workload + "_" + t.config +
                       ".json");
    }
    for (const auto &a : passthrough)
        args.push_back(a);

    const pid_t pid = fork();
    if (pid < 0)
        fatal("fork failed: %s", std::strerror(errno));
    if (pid == 0) {
        // Child: keep stderr for diagnostics, drop the table on stdout
        // (per-task results live in the journal and --outdir reports).
        const int devnull = ::open("/dev/null", O_WRONLY);
        if (devnull >= 0) {
            dup2(devnull, STDOUT_FILENO);
            ::close(devnull);
        }
        std::vector<char *> argv;
        for (auto &a : args)
            argv.push_back(a.data());
        argv.push_back(nullptr);
        execv(argv[0], argv.data());
        std::fprintf(stderr, "exec %s failed: %s\n", argv[0],
                     std::strerror(errno));
        _exit(127);
    }
    return pid;
}

} // namespace

int
main(int argc, char **argv)
{
    setPanicExitCode(3);

    std::string cli = siblingCli(argv[0]);
    std::string workloads_arg = "all";
    std::string configs_arg = "all";
    std::string journal_path = "batch_journal.jsonl";
    std::string outdir;
    uint64_t task_timeout_ms = 0;
    int jobs = 1;
    int retries = 0;
    uint64_t backoff_ms = 100;
    bool resume = false;
    std::string threads_arg;
    std::string exec_policy_arg;
    std::string cache_dir_arg;
    std::string io_inject;
    uint64_t io_inject_seed = 0;
    std::vector<std::string> passthrough;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("option %s needs a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "--cli") {
            cli = next();
        } else if (arg == "--workloads") {
            workloads_arg = next();
        } else if (arg == "--configs") {
            configs_arg = next();
        } else if (arg == "--jobs") {
            jobs = int(std::stoul(next()));
            if (jobs < 1)
                fatal("--jobs must be >= 1");
        } else if (arg == "--task-timeout-ms") {
            task_timeout_ms = std::stoull(next());
        } else if (arg == "--retries") {
            retries = int(std::stoul(next()));
        } else if (arg == "--backoff-ms") {
            backoff_ms = std::stoull(next());
        } else if (arg == "--journal") {
            journal_path = next();
        } else if (arg == "--resume") {
            resume = true;
        } else if (arg == "--outdir") {
            outdir = next();
        } else if (arg == "--threads") {
            threads_arg = next();
        } else if (arg == "--exec-policy") {
            exec_policy_arg = next();
        } else if (arg == "--cache-dir") {
            cache_dir_arg = next();
        } else if (arg == "--io-inject") {
            io_inject = next();
        } else if (arg == "--io-inject-seed") {
            io_inject_seed = std::stoull(next());
        } else if (arg == "--") {
            for (++i; i < argc; ++i)
                passthrough.push_back(argv[i]);
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            usage();
            fatal("unknown option '%s'", arg.c_str());
        }
    }

    std::vector<std::string> workload_names =
        workloads_arg == "all" ? workloads::benchmarkNames()
                               : splitList(workloads_arg);
    std::vector<std::string> config_names;
    if (configs_arg == "all") {
        // The registry is the one source of truth for the sweep: a
        // newly registered backend joins "all" with no edit here.
        for (const pipeline::BackendDesc *be : pipeline::allBackends())
            config_names.push_back(be->name);
    } else {
        config_names = splitList(configs_arg);
    }
    if (workload_names.empty() || config_names.empty())
        fatal("empty workload or config list");
    if (access(cli.c_str(), X_OK) != 0)
        fatal("pathsched_cli not executable at '%s' (use --cli)",
              cli.c_str());
    if (!outdir.empty() && mkdir(outdir.c_str(), 0777) != 0 &&
        errno != EEXIST)
        fatal("cannot create --outdir '%s': %s", outdir.c_str(),
              std::strerror(errno));

    // Executor flags forward to every child; pathsched_cli itself
    // creates --cache-dir, so the children race only on entry files,
    // which the cache's temp-file/rename protocol already handles.
    if (!threads_arg.empty()) {
        passthrough.push_back("--threads");
        passthrough.push_back(threads_arg);
    }
    if (!exec_policy_arg.empty()) {
        passthrough.push_back("--exec-policy");
        passthrough.push_back(exec_policy_arg);
    }
    if (!cache_dir_arg.empty()) {
        passthrough.push_back("--cache-dir");
        passthrough.push_back(cache_dir_arg);
    }

    std::vector<Task> tasks;
    for (const auto &w : workload_names)
        for (const auto &c : config_names)
            tasks.push_back({w, c});

    // --resume: tasks the journal already shows completed keep their
    // recorded outcome and are not re-executed.
    size_t skipped = 0;
    size_t corrupt_lines = 0;
    if (resume) {
        const auto completed =
            completedInJournal(journal_path, corrupt_lines);
        for (auto &t : tasks) {
            const auto it = completed.find(t.name());
            if (it != completed.end()) {
                t.done = true;
                t.skipped = true;
                t.outcome = it->second;
                ++skipped;
            }
        }
    }

    Vio vio(io_inject_seed);
    if (!io_inject.empty()) {
        std::string err;
        if (!vio.parseFaults(io_inject, err))
            fatal("bad --io-inject: %s", err.c_str());
    }

    JsonlJournal journal(journal_path, &vio);
    if (Status st = journal.open(); !st.ok())
        fatal("cannot open journal '%s': %s", journal_path.c_str(),
              st.message().c_str());

    const int max_attempts = retries + 1;
    std::vector<Running> running;
    installStopHandlers();

    // A journal line that cannot be made durable ends the suite: the
    // runner must never keep spawning work whose transitions a crash
    // would silently lose.  Kill and reap the children, best-effort
    // journal the reason (the fault may be transient or injected with
    // a count), and exit with the distinct code.  The journal stays
    // resumable — whatever has no durable "done" re-runs.
    auto journalWrite = [&](const std::string &json) {
        Status st = journal.line(json);
        if (st.ok())
            return;
        for (const auto &r : running)
            kill(r.pid, SIGKILL);
        for (const auto &r : running) {
            int wstatus = 0;
            waitpid(r.pid, &wstatus, 0);
        }
        size_t pending = 0;
        for (const auto &t : tasks)
            if (!t.done)
                ++pending;
        (void)journal.line(strfmt(
            "{\"event\":\"suite-abort\",\"reason\":\"io-error\","
            "\"error\":\"%s\",\"ts\":%llu,\"killed\":%zu,"
            "\"pending\":%zu}",
            jsonEscape(st.toString()).c_str(),
            (unsigned long long)epochSeconds(), running.size(),
            pending));
        std::fprintf(stderr,
                     "journal write failed: %s; killed %zu task(s), "
                     "%zu pending; rerun with --resume\n",
                     st.toString().c_str(), running.size(), pending);
        std::exit(5);
    };

    journalWrite(strfmt("{\"schema\":\"%s\",\"event\":\"suite-start\","
                        "\"ts\":%llu,\"tasks\":%zu,\"skipped\":%zu,"
                        "\"resume\":%s,\"journalCorrupt\":%zu}",
                        kJournalSchema,
                        (unsigned long long)epochSeconds(), tasks.size(),
                        skipped, resume ? "true" : "false",
                        corrupt_lines));
    if (corrupt_lines > 0)
        std::fprintf(stderr,
                     "journal: %zu corrupt line(s) skipped during "
                     "resume; affected tasks will re-run\n",
                     corrupt_lines);

    auto launch = [&](size_t idx) {
        Task &t = tasks[idx];
        ++t.attempts;
        journalWrite(strfmt(
            "{\"event\":\"start\",\"task\":\"%s\",\"attempt\":%d,"
            "\"ts\":%llu}",
            jsonEscape(t.name()).c_str(), t.attempts,
            (unsigned long long)epochSeconds()));
        Running r;
        r.pid = spawnTask(cli, t, outdir, passthrough);
        r.taskIdx = idx;
        r.start = Clock::now();
        running.push_back(r);
    };

    auto allDone = [&]() {
        for (const auto &t : tasks)
            if (!t.done)
                return false;
        return true;
    };

    while (!allDone() && g_stop_signal == 0) {
        // Fill free job slots with runnable tasks (unstarted, or past
        // their retry backoff).
        while (int(running.size()) < jobs && g_stop_signal == 0) {
            size_t pick = SIZE_MAX;
            const auto now = Clock::now();
            for (size_t i = 0; i < tasks.size(); ++i) {
                Task &t = tasks[i];
                bool is_running = false;
                for (const auto &r : running)
                    if (r.taskIdx == i)
                        is_running = true;
                if (t.done || is_running || t.notBefore > now)
                    continue;
                pick = i;
                break;
            }
            if (pick == SIZE_MAX)
                break;
            launch(pick);
        }

        // Reap exits and enforce the per-task timeout.
        bool reaped = false;
        for (size_t i = 0; i < running.size();) {
            Running &r = running[i];
            Task &t = tasks[r.taskIdx];
            int wstatus = 0;
            const pid_t got = waitpid(r.pid, &wstatus, WNOHANG);
            if (got == 0) {
                if (task_timeout_ms != 0 && !r.killed &&
                    Clock::now() - r.start >
                        std::chrono::milliseconds(task_timeout_ms)) {
                    // Hard kill: the child may be wedged, so no grace.
                    kill(r.pid, SIGKILL);
                    r.killed = true;
                }
                ++i;
                continue;
            }
            reaped = true;
            const double ms =
                std::chrono::duration<double, std::milli>(Clock::now() -
                                                          r.start)
                    .count();
            std::string outcome;
            int exit_code = -1;
            if (r.killed) {
                outcome = "timeout";
            } else if (WIFEXITED(wstatus)) {
                exit_code = WEXITSTATUS(wstatus);
                outcome = exit_code == 0   ? "ok"
                          : exit_code == 2 ? "degraded"
                                           : "failed";
            } else {
                outcome = "crashed"; // killed by a signal, not by us
            }
            // Executor accounting rides along on the done event when
            // the child wrote a report (--outdir): threads, task and
            // steal counts, and stage-cache traffic per batch task.
            std::string exec_json;
            if (!outdir.empty() &&
                (outcome == "ok" || outcome == "degraded")) {
                const ExecSummary es = readExecSummary(
                    outdir + "/" + t.workload + "_" + t.config +
                    ".json");
                if (es.present)
                    exec_json = strfmt(
                        ",\"executor\":{\"threads\":%llu,"
                        "\"tasks\":%llu,\"steals\":%llu,"
                        "\"cacheHits\":%llu,\"cacheMisses\":%llu}",
                        (unsigned long long)es.threads,
                        (unsigned long long)es.tasks,
                        (unsigned long long)es.steals,
                        (unsigned long long)es.cacheHits,
                        (unsigned long long)es.cacheMisses);
            }
            journalWrite(strfmt(
                "{\"event\":\"done\",\"task\":\"%s\",\"attempt\":%d,"
                "\"outcome\":\"%s\",\"exit\":%d,\"ms\":%.1f,"
                "\"ts\":%llu%s}",
                jsonEscape(t.name()).c_str(), t.attempts,
                outcome.c_str(), exit_code, ms,
                (unsigned long long)epochSeconds(),
                exec_json.c_str()));

            const bool success =
                outcome == "ok" || outcome == "degraded";
            if (success || t.attempts >= max_attempts) {
                t.done = true;
                t.outcome = outcome;
                std::printf("%-16s %-8s attempt %d/%d (%.0f ms)\n",
                            t.name().c_str(), outcome.c_str(),
                            t.attempts, max_attempts, ms);
            } else {
                // Doubling backoff before the next attempt.
                const uint64_t delay =
                    backoff_ms << (unsigned(t.attempts) - 1);
                t.notBefore = Clock::now() +
                              std::chrono::milliseconds(delay);
                std::fprintf(stderr,
                             "%s: attempt %d/%d %s; retrying in "
                             "%llu ms\n",
                             t.name().c_str(), t.attempts, max_attempts,
                             outcome.c_str(),
                             (unsigned long long)delay);
            }
            running[i] = running.back();
            running.pop_back();
        }
        if (!reaped)
            usleep(2000);
    }

    if (g_stop_signal != 0) {
        // Graceful abort: kill and reap every live child, journal the
        // abort (line() flushes and fsyncs, so the journal cannot end
        // torn), and exit with the distinct interrupted code.  --resume
        // later re-runs exactly the tasks with no completed "done".
        for (const auto &r : running)
            kill(r.pid, SIGKILL);
        for (const auto &r : running) {
            int wstatus = 0;
            waitpid(r.pid, &wstatus, 0);
            journalWrite(strfmt(
                "{\"event\":\"done\",\"task\":\"%s\",\"attempt\":%d,"
                "\"outcome\":\"aborted\",\"exit\":-1,\"ts\":%llu}",
                jsonEscape(tasks[r.taskIdx].name()).c_str(),
                tasks[r.taskIdx].attempts,
                (unsigned long long)epochSeconds()));
        }
        size_t pending = 0;
        for (const auto &t : tasks)
            if (!t.done)
                ++pending;
        journalWrite(strfmt(
            "{\"event\":\"suite-abort\",\"signal\":%d,\"ts\":%llu,"
            "\"killed\":%zu,\"pending\":%zu}",
            int(g_stop_signal), (unsigned long long)epochSeconds(),
            running.size(), pending));
        std::fprintf(stderr,
                     "interrupted by signal %d: killed %zu task(s), "
                     "%zu pending; rerun with --resume\n",
                     int(g_stop_signal), running.size(), pending);
        return 4;
    }

    size_t n_ok = 0, n_degraded = 0, n_failed = 0;
    for (const auto &t : tasks) {
        if (t.outcome == "ok")
            ++n_ok;
        else if (t.outcome == "degraded")
            ++n_degraded;
        else
            ++n_failed;
    }
    journalWrite(strfmt(
        "{\"event\":\"suite-end\",\"ts\":%llu,\"ok\":%zu,"
        "\"degraded\":%zu,\"failed\":%zu,\"skipped\":%zu}",
        (unsigned long long)epochSeconds(), n_ok, n_degraded, n_failed,
        skipped));
    std::printf("suite: %zu ok, %zu degraded, %zu failed "
                "(%zu resumed from journal)\n",
                n_ok, n_degraded, n_failed, skipped);

    if (n_failed > 0)
        return 3;
    if (n_degraded > 0)
        return 2;
    return 0;
}
