/**
 * @file
 * Command-line driver: run any Table-1 workload through any paper
 * configuration with the machine, cache, and formation knobs exposed,
 * and print a one-line report per run.  Profiles can be dumped to (or
 * preloaded from) the text format in profile/serialize.hpp.
 *
 * Examples:
 *   pathsched_cli --workload wc --config P4
 *   pathsched_cli --workload all --config all --icache
 *   pathsched_cli --workload gcc --config P4 --depth 7 --latency realistic
 *   pathsched_cli --workload corr --dump-paths corr.paths
 *   pathsched_cli --workload wc --config all --json out.json --trace out.trace
 *   pathsched_cli --workload wc --config P4 --stats
 *   pathsched_cli --workload wc --config P4 --inject stage=form,proc=3
 *
 * Exit codes: 0 = success, 1 = user/configuration error, 2 = all runs
 * completed but at least one procedure degraded to the BB fallback,
 * 3 = internal error (a pathsched bug).
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "gen/generator.hpp"
#include "interp/interpreter.hpp"
#include "machine/machine.hpp"
#include "obs/stats.hpp"
#include "obs/timer.hpp"
#include "pipeline/backend.hpp"
#include "pipeline/cache.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/report.hpp"
#include "profile/serialize.hpp"
#include "profile/validate.hpp"
#include "support/faultinject.hpp"
#include "support/logging.hpp"
#include "support/status.hpp"
#include "workloads/workloads.hpp"

using namespace pathsched;

namespace {

/** Comma-joined registry names: the one source of the config list. */
std::string
configListString()
{
    std::string out;
    for (const pipeline::BackendDesc *be : pipeline::allBackends()) {
        if (!out.empty())
            out += ", ";
        out += be->name;
    }
    return out;
}

void
usage()
{
    std::printf(
        "usage: pathsched_cli [options]\n"
        "  --workload NAME|all     Table-1 benchmark (default: all)\n"
        "  --gen SPEC              run a generated workload instead of a\n"
        "                          Table-1 benchmark, e.g.\n"
        "                          --gen 'seed=7,branch=tttf'\n"
        "                          (repeatable; see docs/fuzzing.md)\n");
    std::printf(
        "  --config CFG|all        %s\n"
        "                          (default: all)\n",
        configListString().c_str());
    std::printf(
        "  --icache                attach the 32KB direct-mapped cache\n"
        "  --depth N               path-profile depth in branches "
        "(default 15)\n"
        "  --threshold X           enlargement completion threshold\n"
        "  --max-instrs N          superblock instruction cap\n"
        "  --latency unit|realistic\n"
        "  --forward-paths         forward (Ball-Larus-style) windows\n"
        "  --grow-upward           also grow traces upward\n"
        "  --no-enlarge            skip the enlargement step\n"
        "  --no-regalloc           skip register allocation\n"
        "  --no-ph                 skip Pettis-Hansen placement\n"
        "  --dump-paths FILE       write the workload's general path\n"
        "                          profile (training input) to FILE\n"
        "  --dump-edges FILE       write the workload's edge profile\n"
        "                          (training input) to FILE\n"
        "  --profile-version 1|2   profile dump format; v2 embeds a\n"
        "                          checksum and per-procedure CFG\n"
        "                          fingerprints (default 1)\n"
        "  --load-paths FILE       drive P4/P4e formation from this\n"
        "                          path profile instead of training\n"
        "  --load-edges FILE       drive M4/M16 formation from this\n"
        "                          edge profile instead of training\n"
        "  --profile-check MODE    admission for loaded profiles:\n"
        "                          strict (any finding fails, exit 1),\n"
        "                          repair (degrade per procedure,\n"
        "                          exit 2; default), off (trust)\n"
        "  --validate-profile      only admit the loaded profile(s)\n"
        "                          against the workload and report;\n"
        "                          exit 0 clean, 2 admissible with\n"
        "                          degradations, 3 rejected\n"
        "  --json FILE             write a JSON report of every run to\n"
        "                          FILE ('-' = stdout, suppresses the\n"
        "                          table); see docs/observability.md\n"
        "  --trace FILE            write a Chrome trace_event file of\n"
        "                          per-stage wall times to FILE (open\n"
        "                          in chrome://tracing or Perfetto)\n"
        "  --stats                 collect interpreter statistics and\n"
        "                          dump the stat registry after the runs\n"
        "  --inject SPEC           arm deterministic fault injection,\n"
        "                          e.g. stage=form,proc=3,kind=verify\n"
        "                          (';' separates several faults; see\n"
        "                          docs/robustness.md).  Repeatable.\n"
        "  --inject-seed N         RNG seed for prob= faults (default 0)\n"
        "  --deadline-ms N         wall-clock budget per pipeline run;\n"
        "                          expiry ends that run with a typed\n"
        "                          DeadlineExceeded error (exit 1)\n"
        "  --growth-budget N       ops formation may add to one\n"
        "                          procedure; exhaustion degrades that\n"
        "                          procedure to BB (exit 2)\n"
        "  --compact-budget N      ops compaction may process per\n"
        "                          procedure (exhaustion degrades)\n"
        "  --regalloc-budget N     ops register allocation may process\n"
        "                          per procedure (exhaustion degrades)\n"
        "  --step-budget N         interpreter step budget per run;\n"
        "                          a test run over it degrades the\n"
        "                          procedure it stopped in\n"
        "  --threads N             worker threads for the per-procedure\n"
        "                          stage tasks (default 1 = serial;\n"
        "                          0 = hardware concurrency).  Results\n"
        "                          are identical for every N\n"
        "  --exec-policy P         ready-task policy with --threads > 1:\n"
        "                          static, dynamic or steal (default)\n"
        "  --cache-dir DIR         persist the memoized stage cache in\n"
        "                          DIR (created if missing); repeat\n"
        "                          runs skip unchanged procedures'\n"
        "                          transform chains\n"
        "  --list                  list workloads and exit\n"
        "\n"
        "exit codes: 0 success; 1 user error (including an exhausted\n"
        "deadline or budget that a BB fallback cannot absorb);\n"
        "2 completed with BB degradations; 3 internal error\n");
}

bool
parseConfig(const std::string &s, pipeline::SchedConfig &out)
{
    const pipeline::BackendDesc *be = pipeline::findBackend(s);
    if (be == nullptr)
        return false;
    out = be->config;
    return true;
}

void
dumpPaths(const workloads::Workload &w, const std::string &file,
          const profile::PathProfileParams &params, int version)
{
    profile::PathProfiler pp(w.program, params);
    interp::Interpreter interp(w.program);
    interp.addListener(&pp);
    interp.run(w.train);
    std::ofstream out(file);
    if (!out)
        fatal("cannot open '%s' for writing", file.c_str());
    out << (version == 2 ? profile::toTextV2(pp, w.program)
                         : profile::toText(pp));
    std::printf("wrote %zu distinct paths to %s\n", pp.numPaths(),
                file.c_str());
}

void
dumpEdges(const workloads::Workload &w, const std::string &file,
          int version)
{
    profile::EdgeProfiler ep(w.program);
    interp::Interpreter interp(w.program);
    interp.addListener(&ep);
    interp.run(w.train);
    std::ofstream out(file);
    if (!out)
        fatal("cannot open '%s' for writing", file.c_str());
    out << (version == 2 ? profile::toTextV2(ep, w.program)
                         : profile::toText(ep));
    std::printf("wrote edge profile to %s\n", file.c_str());
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot read '%s'", path.c_str());
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    return text;
}

/**
 * Standalone admission (--validate-profile): check the loaded
 * profile(s) against one workload's program without running the
 * pipeline.  Returns the worst exit code seen: 0 clean, 2 admissible
 * with degradations, 3 rejected outright.
 */
int
validateAgainst(const workloads::Workload &w, const std::string &name,
                const std::string &edge_text,
                const std::string &path_text,
                const profile::PathProfileParams &params)
{
    // Always audit in Repair mode here: Strict would stop at the first
    // finding and Off would skip every check, but a validation run
    // should enumerate everything wrong with the file.
    profile::ValidateOptions vo;
    vo.mode = profile::AdmissionMode::Repair;
    profile::LoadOptions lo;
    lo.lenient = true;
    int exit_code = 0;
    auto report = [&](const char *kind, const Status &load_st,
                      const profile::ProfileAudit &audit) {
        if (!load_st.ok()) {
            std::printf("%s: %s profile: rejected (%s)\n", name.c_str(),
                        kind, load_st.toString().c_str());
            exit_code = 3;
            return;
        }
        if (audit.clean()) {
            std::printf("%s: %s profile: clean (%llu procedures "
                        "checked)\n",
                        name.c_str(), kind,
                        (unsigned long long)audit.checked);
            return;
        }
        for (const auto &pa : audit.procs)
            std::printf("%s: %s profile: proc '%s' %s (%s): %s\n",
                        name.c_str(), kind, pa.procName.c_str(),
                        profile::procActionName(pa.action),
                        errorKindName(pa.kind), pa.message.c_str());
        if (audit.droppedPaths > 0)
            std::printf("%s: %s profile: %llu records dropped\n",
                        name.c_str(), kind,
                        (unsigned long long)audit.droppedPaths);
        exit_code = std::max(exit_code, 2);
    };
    if (!edge_text.empty()) {
        profile::EdgeProfiler ep(w.program);
        profile::ProfileMeta meta;
        profile::ProfileAudit audit;
        Status st = profile::loadEdgeProfile(edge_text, ep, meta, lo);
        if (st.ok())
            (void)profile::auditEdgeProfile(w.program, ep, meta, vo,
                                            audit);
        report("edge", st, audit);
    }
    if (!path_text.empty()) {
        profile::PathProfiler pp(w.program, params);
        profile::ProfileMeta meta;
        profile::ProfileAudit audit;
        Status st = profile::loadPathProfile(path_text, pp, meta, lo);
        if (st.ok())
            (void)profile::auditPathProfile(w.program, pp, meta, vo,
                                            audit, nullptr);
        report("path", st, audit);
    }
    return exit_code;
}

} // namespace

int
main(int argc, char **argv)
{
    // Distinguish internal bugs (exit 3) from user errors (fatal's
    // exit 1) in this driver's documented exit codes.
    setPanicExitCode(3);

    std::string workload = "all";
    std::vector<std::string> gen_specs;
    std::string config = "all";
    std::string dump_paths;
    std::string dump_edges;
    std::string load_paths;
    std::string load_edges;
    int profile_version = 1;
    bool validate_profile = false;
    std::string json_file;
    std::string trace_file;
    std::vector<std::string> inject_specs;
    uint64_t inject_seed = 0;
    uint64_t deadline_ms = 0;
    bool want_stats = false;
    std::string cache_dir;
    pipeline::PipelineOptions opts;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("option %s needs a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "--workload") {
            workload = next();
        } else if (arg == "--gen") {
            gen_specs.push_back(next());
        } else if (arg == "--config") {
            config = next();
        } else if (arg == "--icache") {
            opts.useICache = true;
        } else if (arg == "--depth") {
            opts.pathParams.maxBranches = uint32_t(std::stoul(next()));
        } else if (arg == "--threshold") {
            opts.completionThreshold = std::stod(next());
        } else if (arg == "--max-instrs") {
            opts.maxInstrs = uint32_t(std::stoul(next()));
        } else if (arg == "--latency") {
            const std::string v = next();
            if (v == "unit") {
                opts.machine = machine::MachineModel::unitLatency();
            } else if (v == "realistic") {
                opts.machine = machine::MachineModel::realisticLatency();
            } else {
                fatal("unknown latency table '%s'", v.c_str());
            }
        } else if (arg == "--forward-paths") {
            opts.pathParams.forwardPathsOnly = true;
        } else if (arg == "--grow-upward") {
            opts.growUpward = true;
        } else if (arg == "--no-enlarge") {
            opts.enlarge = false;
        } else if (arg == "--no-regalloc") {
            opts.registerAllocate = false;
        } else if (arg == "--no-ph") {
            opts.pettisHansen = false;
        } else if (arg == "--dump-paths") {
            dump_paths = next();
        } else if (arg == "--dump-edges") {
            dump_edges = next();
        } else if (arg == "--load-paths") {
            load_paths = next();
        } else if (arg == "--load-edges") {
            load_edges = next();
        } else if (arg == "--profile-version") {
            profile_version = int(std::stoul(next()));
            if (profile_version != 1 && profile_version != 2)
                fatal("--profile-version must be 1 or 2");
        } else if (arg == "--profile-check" ||
                   arg.rfind("--profile-check=", 0) == 0) {
            const std::string v = arg == "--profile-check"
                                      ? next()
                                      : arg.substr(std::strlen(
                                            "--profile-check="));
            if (!profile::parseAdmissionMode(v, opts.profileInput.check))
                fatal("unknown --profile-check mode '%s' (want "
                      "strict, repair or off)",
                      v.c_str());
        } else if (arg == "--validate-profile") {
            validate_profile = true;
        } else if (arg == "--json") {
            json_file = next();
        } else if (arg == "--trace") {
            trace_file = next();
        } else if (arg == "--stats") {
            want_stats = true;
        } else if (arg == "--inject") {
            inject_specs.push_back(next());
        } else if (arg == "--inject-seed") {
            inject_seed = std::stoull(next());
        } else if (arg == "--deadline-ms") {
            deadline_ms = std::stoull(next());
        } else if (arg == "--growth-budget") {
            opts.robustness.budget.formGrowthOps = std::stoull(next());
        } else if (arg == "--compact-budget") {
            opts.robustness.budget.compactOps = std::stoull(next());
        } else if (arg == "--regalloc-budget") {
            opts.robustness.budget.regallocOps = std::stoull(next());
        } else if (arg == "--step-budget") {
            opts.robustness.budget.interpSteps = std::stoull(next());
        } else if (arg == "--threads") {
            opts.executor.threads = unsigned(std::stoul(next()));
        } else if (arg == "--exec-policy") {
            const std::string v = next();
            if (!pipeline::parseExecPolicy(v, opts.executor.policy))
                fatal("unknown --exec-policy '%s' (want static, "
                      "dynamic or steal)",
                      v.c_str());
        } else if (arg == "--cache-dir") {
            cache_dir = next();
        } else if (arg == "--list") {
            for (const auto &n : workloads::benchmarkNames())
                std::printf("%s\n", n.c_str());
            std::printf(
                "\ngenerator families (use with --gen, e.g. "
                "--gen 'seed=7,branch=tttf'):\n"
                "  branch=mixed       per-branch mix of the patterns "
                "below (default)\n"
                "  branch=random      data-dependent conditions, no "
                "periodic structure\n"
                "  branch=tttf        period-P taken/taken/../not-taken "
                "branches (alt)\n"
                "  branch=phased      true for 2P executions, then "
                "false (ph)\n"
                "  branch=corr        repeats the previous condition in "
                "the region\n");
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            usage();
            fatal("unknown option '%s'", arg.c_str());
        }
    }

    // The run list: Table-1 benchmarks by name, or generated workloads
    // when --gen is given (the generator and the Table-1 suite share
    // the Workload shape, so everything downstream is agnostic).
    std::vector<workloads::Workload> suite;
    if (!gen_specs.empty()) {
        if (workload != "all")
            fatal("--gen and --workload are mutually exclusive");
        for (const auto &text : gen_specs) {
            gen::GenSpec spec;
            std::string err;
            if (!gen::GenSpec::parse(text, spec, err))
                fatal("bad --gen spec '%s': %s", text.c_str(),
                      err.c_str());
            gen::Workload gw = gen::generate(spec);
            workloads::Workload w;
            w.name = gw.name;
            w.description = gw.spec.toString();
            w.group = "gen";
            w.program = std::move(gw.program);
            w.train = std::move(gw.train);
            w.test = std::move(gw.test);
            suite.push_back(std::move(w));
        }
    } else if (workload == "all") {
        suite = workloads::standardBenchmarks();
    } else {
        suite.push_back(workloads::makeByName(workload));
    }

    if (!load_edges.empty())
        opts.profileInput.edgeText = readFile(load_edges);
    if (!load_paths.empty())
        opts.profileInput.pathText = readFile(load_paths);

    if (validate_profile) {
        if (load_edges.empty() && load_paths.empty())
            fatal("--validate-profile needs --load-edges and/or "
                  "--load-paths");
        int exit_code = 0;
        for (const auto &w : suite) {
            exit_code = std::max(
                exit_code,
                validateAgainst(w, w.name, opts.profileInput.edgeText,
                                opts.profileInput.pathText,
                                opts.pathParams));
        }
        return exit_code;
    }

    std::vector<pipeline::SchedConfig> configs;
    if (config == "all") {
        for (const pipeline::BackendDesc *be : pipeline::allBackends())
            configs.push_back(be->config);
    } else {
        pipeline::SchedConfig c;
        if (!parseConfig(config, c))
            fatal("unknown config '%s'", config.c_str());
        configs.push_back(c);
    }

    // Fault injection: armed once, shared across every run (fire
    // budgets are global, so `count=1` means one fault in the whole
    // invocation).
    FaultInjector injector(inject_seed);
    for (const auto &spec : inject_specs) {
        std::string err;
        if (!injector.parse(spec, err))
            fatal("bad --inject spec '%s': %s", spec.c_str(),
                  err.c_str());
    }
    if (!injector.empty())
        opts.robustness.faults = &injector;

    // The stage cache outlives the runs so `--config all` sweeps (and
    // the in-memory tier generally) share one cache; --cache-dir adds
    // the cross-process disk tier.
    std::unique_ptr<pipeline::StageCache> cache;
    if (!cache_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(cache_dir, ec);
        if (ec)
            fatal("cannot create --cache-dir '%s': %s",
                  cache_dir.c_str(), ec.message().c_str());
        cache = std::make_unique<pipeline::StageCache>(cache_dir);
        opts.executor.cache = cache.get();
    }

    // Observability sinks: the registry feeds --json and --stats, the
    // stage trace feeds --trace.  Null sinks disable collection.
    obs::StatRegistry registry;
    obs::StageTrace trace;
    obs::Observer observer;
    const bool need_registry =
        !json_file.empty() || want_stats;
    if (need_registry)
        observer.stats = &registry;
    if (!trace_file.empty())
        observer.trace = &trace;
    if (observer.stats != nullptr || observer.trace != nullptr)
        opts.observability.observer = &observer;
    opts.observability.interpStats = want_stats;

    std::vector<pipeline::ReportRun> report_runs;
    bool any_degraded = false;
    // `--json -` owns stdout: keep the human table off it.
    const bool print_table = json_file != "-";

    if (print_table)
        std::printf("%-8s %-4s %12s %8s %9s %9s %11s\n", "bench", "cfg",
                    "cycles", "miss%", "code(KB)", "sb-exec", "sb-size");
    for (const auto &w : suite) {
        const std::string &name = w.name;
        if (!dump_paths.empty())
            dumpPaths(w, dump_paths, opts.pathParams, profile_version);
        if (!dump_edges.empty())
            dumpEdges(w, dump_edges, profile_version);
        for (const auto c : configs) {
            // The wall budget is per pipeline run, so the clock starts
            // fresh here rather than at option parsing.
            if (deadline_ms != 0)
                opts.robustness.budget.deadline =
                    Deadline::afterMs(deadline_ms);
            auto run_timer = observer.time("run." + name + "." +
                                           pipeline::configName(c));
            auto r = pipeline::runPipeline(w.program, w.train, w.test, c,
                                           opts);
            run_timer.stop();
            if (!r.status.ok())
                fatal("%s/%s did not complete: %s", name.c_str(),
                      r.name.c_str(), r.status.toString().c_str());
            if (r.degradedRun()) {
                any_degraded = true;
                for (const auto &d : r.degraded)
                    std::fprintf(stderr,
                                 "degraded: %s/%s proc %s at %s (%s)\n",
                                 name.c_str(), r.name.c_str(),
                                 d.procName.c_str(), d.stage.c_str(),
                                 errorKindName(d.kind));
            }
            if (r.profileAudit.enabled && !r.profileAudit.clean()) {
                // Admission repairs (projected-edge degradations, file
                // fallback) do not appear in r.degraded; surface them
                // and count them toward the degraded exit code.
                any_degraded = true;
                if (r.profileAudit.fileRejected)
                    std::fprintf(
                        stderr, "profile: %s/%s file rejected (%s)\n",
                        name.c_str(), r.name.c_str(),
                        r.profileAudit.fileStatus.toString().c_str());
                for (const auto &pa : r.profileAudit.procs)
                    std::fprintf(
                        stderr, "profile: %s/%s proc %s %s (%s)\n",
                        name.c_str(), r.name.c_str(),
                        pa.procName.c_str(),
                        profile::procActionName(pa.action),
                        errorKindName(pa.kind));
            }
            if (print_table)
                std::printf(
                    "%-8s %-4s %12llu %8.3f %9.1f %9.2f %11.2f\n",
                    name.c_str(), r.name.c_str(),
                    (unsigned long long)r.test.cycles,
                    r.test.icacheAccesses
                        ? 100.0 * double(r.test.icacheMisses) /
                              double(r.test.icacheAccesses)
                        : 0.0,
                    double(r.codeBytes) / 1024.0,
                    r.test.sbAvgBlocksExecuted(),
                    r.test.sbAvgBlocksInSuperblock());
            if (!json_file.empty())
                report_runs.push_back({name, std::move(r)});
        }
    }

    if (want_stats) {
        // `--json -` owns stdout, so the text dump moves to stderr.
        FILE *out = print_table ? stdout : stderr;
        std::fprintf(out, "\nstat registry (%zu stats)\n",
                     registry.size());
        std::fputs(registry.toText().c_str(), out);
    }
    if (!trace_file.empty()) {
        if (!trace.writeFile(trace_file))
            fatal("cannot write trace file '%s'", trace_file.c_str());
        std::fprintf(stderr, "wrote %zu trace events to %s\n",
                     trace.events().size(), trace_file.c_str());
    }
    if (!json_file.empty()) {
        if (!pipeline::writeReportFile(json_file, report_runs,
                                       need_registry ? &registry
                                                     : nullptr))
            fatal("cannot write JSON report '%s'", json_file.c_str());
        if (json_file != "-")
            std::fprintf(stderr, "wrote %zu runs to %s\n",
                         report_runs.size(), json_file.c_str());
    }
    return any_degraded ? 2 : 0;
}
