/**
 * @file
 * pathsched_serve: crash-safe streaming profile-aggregation server
 * (docs/serving.md).
 *
 * Serve mode runs the long-lived aggregation daemon for one workload:
 * clients stream checksummed profile-delta frames over a unix or TCP
 * socket, admitted deltas are fsync'd to a write-ahead log before they
 * become visible, the decayed time-window aggregate rotates on a wall-
 * clock epoch, and procedures whose hot-path fingerprint moved are
 * rescheduled (unchanged ones are served from the stage cache).
 * SIGTERM/SIGINT stop gracefully (snapshot + status.json); kill -9 at
 * any byte recovers to the exact pre-crash aggregate on restart.
 *
 * Replay mode is the client: it uploads a directory of profile-delta
 * files (sorted by name, seq = position + --seq-base) with ack-aware
 * retry, timeout and exponential backoff, so a corpus can be streamed
 * against a live server — including one being crashed and restarted
 * under it.
 *
 * Examples:
 *   pathsched_serve --listen unix:/tmp/ps.sock --state /tmp/ps-state \
 *       --workload wc --config P4 --epoch-ms 500
 *   pathsched_serve --replay deltas/ --connect unix:/tmp/ps.sock \
 *       --client edge-host-1
 *
 * Exit codes: 0 = clean stop (signal or --max-* reached), 1 = user /
 * configuration error, 2 = replay finished but some deltas were
 * rejected or exhausted retries.
 */

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "pipeline/backend.hpp"
#include "pipeline/pipeline.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/socket.hpp"
#include "support/logging.hpp"
#include "support/strutil.hpp"
#include "support/vio.hpp"
#include "workloads/workloads.hpp"

using namespace pathsched;

namespace {

void
usage()
{
    std::printf(
        "usage (serve): pathsched_serve --listen ADDR --state DIR\n"
        "               [serve options]\n"
        "usage (replay): pathsched_serve --replay DIR --connect ADDR\n"
        "                --client ID [replay options]\n"
        "\n"
        "ADDR is unix:<path> or tcp:<ipv4>:<port>.\n"
        "\n"
        "serve options:\n"
        "  --workload NAME         workload to schedule (default wc)\n"
        "  --config NAME           any registered backend, e.g.\n"
        "                          BB|M4|M16|P4|P4e|G4|G4e (default P4)\n"
        "  --state DIR             WAL + snapshot directory (required)\n"
        "  --cache-dir DIR         on-disk stage-cache tier\n"
        "  --epoch-ms N            wall ms per aggregation epoch\n"
        "                          (default 1000)\n"
        "  --windows N             live epochs in the decay window\n"
        "                          (default 8)\n"
        "  --resched-every N       reschedule attempt every N epochs\n"
        "                          (default 1)\n"
        "  --resched-deadline-ms N wall budget per reschedule (0 = none)\n"
        "  --rate-limit N          client deltas per epoch (default 64)\n"
        "  --snapshot-every N      WAL records between snapshots\n"
        "                          (default 256; 0 = only on flush)\n"
        "  --max-deltas N          exit after N accepted deltas (tests)\n"
        "  --max-epochs N          exit after N epochs (tests)\n"
        "  --schedule-out FILE     write the scheduled program blob on\n"
        "                          exit\n"
        "  --status-out FILE       write status JSON on exit (default\n"
        "                          <state>/status.json)\n"
        "  --report-out FILE       also write the v1 pipeline report\n"
        "  --io-inject SPEC        deterministic disk-fault injection\n"
        "                          (docs/robustness.md), e.g.\n"
        "                          path=wal,op=fsync,kind=eio,count=2\n"
        "  --io-inject-seed N      seed for prob= fault selectors\n"
        "\n"
        "replay options:\n"
        "  --client ID             client id ([A-Za-z0-9_-]{1,64})\n"
        "  --kind edge|path        profile kind of the files (default:\n"
        "                          sniff per file header)\n"
        "  --seq-base N            seq of the first file (default 1)\n"
        "  --ack-timeout-ms N      per-ack timeout (default 5000)\n"
        "  --backoff-ms N          first retry backoff (default 50)\n"
        "  --max-attempts N        attempts per delta (default 5)\n"
        "  --tick-every N          send a Tick after every N deltas\n"
        "                          (0 = never)\n"
        "  --flush-at-end          send Flush after the last delta\n"
        "\n"
        "exit codes: 0 clean stop; 1 user error; 2 replay had rejected\n"
        "or undeliverable deltas\n");
}

bool
parseU64(const char *s, uint64_t &out)
{
    if (s == nullptr || *s == '\0')
        return false;
    uint64_t v = 0;
    for (const char *p = s; *p != '\0'; ++p) {
        if (*p < '0' || *p > '9')
            return false;
        v = v * 10 + uint64_t(*p - '0');
    }
    out = v;
    return true;
}

bool
parseConfig(const std::string &name, pipeline::SchedConfig &out)
{
    const pipeline::BackendDesc *be = pipeline::findBackend(name);
    if (be == nullptr)
        return false;
    out = be->config;
    return true;
}

bool
writeDurableFile(Vio *vio, const char *label, const std::string &path,
                 const std::string &text)
{
    // Temp-file + fsync + rename, like snapshots: a crash mid-write
    // leaves the previous status/report intact, never a torn tail.
    Status st = atomicWriteFile(vio, label, path, text);
    if (!st.ok()) {
        warn("serve: %s", st.toString().c_str());
        return false;
    }
    return true;
}

int
runServe(const std::string &listen, const std::string &stateDir,
         const std::string &workloadName, const std::string &configName,
         serve::ServeOptions sopts, serve::SocketLoopOptions lopts,
         const std::string &scheduleOut, const std::string &statusOut,
         const std::string &reportOut)
{
    serve::Endpoint ep;
    if (Status st = serve::Endpoint::parse(listen, ep); !st.ok()) {
        std::fprintf(stderr, "%s\n", st.toString().c_str());
        return 1;
    }
    const auto names = workloads::benchmarkNames();
    if (std::find(names.begin(), names.end(), workloadName) ==
        names.end()) {
        std::fprintf(stderr, "unknown workload '%s'\n",
                     workloadName.c_str());
        return 1;
    }
    if (!parseConfig(configName, sopts.config)) {
        std::fprintf(stderr, "unknown config '%s'\n",
                     configName.c_str());
        return 1;
    }

    serve::ServeCore core(workloads::makeByName(workloadName), sopts,
                          stateDir);
    serve::RecoveryInfo dummy;
    (void)dummy;
    if (Status st = core.init(); !st.ok()) {
        std::fprintf(stderr, "recovery failed: %s\n",
                     st.toString().c_str());
        return 1;
    }
    const serve::RecoveryInfo &rec = core.recovery();
    inform("serve: recovered %s: snapshot gen %llu, %llu records "
           "replayed, %llu torn segment(s)",
           stateDir.c_str(), (unsigned long long)rec.snapshotGen,
           (unsigned long long)rec.recordsReplayed,
           (unsigned long long)rec.tornSegments);
    inform("serve: listening on %s (workload %s, config %s)",
           listen.c_str(), workloadName.c_str(), configName.c_str());

    Status st = serve::runSocketLoop(core, ep, lopts);
    if (!st.ok())
        std::fprintf(stderr, "serve loop failed: %s\n",
                     st.toString().c_str());
    // Write the exit outputs even after a degraded stop: status.json's
    // health block is exactly what an operator needs to diagnose it.
    const std::string statusPath =
        statusOut.empty() ? stateDir + "/status.json" : statusOut;
    if (!writeDurableFile(sopts.vio, "status", statusPath,
                          core.statusJson()))
        warn("serve: could not write %s", statusPath.c_str());
    if (!reportOut.empty() &&
        !writeDurableFile(sopts.vio, "status", reportOut,
                          core.reportJson()))
        warn("serve: could not write %s", reportOut.c_str());
    if (!scheduleOut.empty() && !core.writeScheduleBlob(scheduleOut))
        warn("serve: no schedule to write to %s", scheduleOut.c_str());
    return st.ok() ? 0 : 1;
}

int
runReplay(const std::string &dir, const std::string &connect,
          const std::string &clientId, const std::string &kindArg,
          uint64_t seqBase, serve::ClientOptions copts,
          uint64_t tickEvery, bool flushAtEnd)
{
    serve::Endpoint ep;
    if (Status st = serve::Endpoint::parse(connect, ep); !st.ok()) {
        std::fprintf(stderr, "%s\n", st.toString().c_str());
        return 1;
    }
    if (!serve::validClientId(clientId)) {
        std::fprintf(stderr, "invalid --client id '%s'\n",
                     clientId.c_str());
        return 1;
    }

    // The corpus: every regular file, replayed in name order so seq
    // assignment is reproducible across runs.
    std::vector<std::string> files;
    DIR *d = opendir(dir.c_str());
    if (d == nullptr) {
        std::fprintf(stderr, "cannot open --replay dir '%s'\n",
                     dir.c_str());
        return 1;
    }
    while (dirent *e = readdir(d)) {
        const std::string name = e->d_name;
        if (name != "." && name != "..")
            files.push_back(name);
    }
    closedir(d);
    std::sort(files.begin(), files.end());
    if (files.empty()) {
        std::fprintf(stderr, "--replay dir '%s' is empty\n",
                     dir.c_str());
        return 1;
    }

    serve::Client client(ep, clientId, copts);
    uint64_t sent = 0, ok = 0, failed = 0;
    for (const std::string &name : files) {
        std::ifstream f(dir + "/" + name, std::ios::binary);
        if (!f) {
            std::fprintf(stderr, "skipping unreadable %s\n",
                         name.c_str());
            ++failed;
            continue;
        }
        std::stringstream ss;
        ss << f.rdbuf();
        const std::string text = ss.str();
        uint8_t kind;
        if (kindArg == "edge")
            kind = 0;
        else if (kindArg == "path")
            kind = 1;
        else
            kind = text.rfind("pathprofile", 0) == 0 ? 1 : 0;
        const uint64_t seq = seqBase + sent;
        ++sent;
        serve::AckCode ack = serve::AckCode::Error;
        Status st = client.sendDelta(seq, kind, text, &ack);
        if (st.ok()) {
            ++ok;
        } else {
            ++failed;
            std::fprintf(stderr, "delta %s (seq %llu): %s\n",
                         name.c_str(), (unsigned long long)seq,
                         st.toString().c_str());
        }
        if (tickEvery != 0 && sent % tickEvery == 0)
            (void)client.sendTick();
    }
    if (flushAtEnd)
        (void)client.sendFlush();
    inform("replay: %llu sent, %llu admitted/duplicate, %llu failed, "
           "%llu reconnect(s)",
           (unsigned long long)sent, (unsigned long long)ok,
           (unsigned long long)failed,
           (unsigned long long)client.reconnects());
    return failed == 0 ? 0 : 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string listen, stateDir, replayDir, connect, clientId;
    std::string workloadName = "wc", configName = "P4";
    std::string kindArg, scheduleOut, statusOut, reportOut;
    std::string cacheDir, ioInject;
    uint64_t ioInjectSeed = 0;
    uint64_t seqBase = 1, tickEvery = 0;
    bool flushAtEnd = false;
    serve::ServeOptions sopts;
    serve::SocketLoopOptions lopts;
    serve::ClientOptions copts;

    auto needValue = [&](int &i, const char *flag) -> const char * {
        if (i + 1 >= argc)
            fatal("%s requires a value", flag);
        return argv[++i];
    };
    auto needU64 = [&](int &i, const char *flag) -> uint64_t {
        uint64_t v = 0;
        if (!parseU64(needValue(i, flag), v))
            fatal("%s wants a non-negative integer", flag);
        return v;
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--listen") {
            listen = needValue(i, "--listen");
        } else if (arg == "--state") {
            stateDir = needValue(i, "--state");
        } else if (arg == "--workload") {
            workloadName = needValue(i, "--workload");
        } else if (arg == "--config") {
            configName = needValue(i, "--config");
        } else if (arg == "--cache-dir") {
            cacheDir = needValue(i, "--cache-dir");
        } else if (arg == "--epoch-ms") {
            lopts.epochMs = needU64(i, "--epoch-ms");
            if (lopts.epochMs == 0)
                fatal("--epoch-ms must be positive");
        } else if (arg == "--windows") {
            const uint64_t w = needU64(i, "--windows");
            if (w == 0 || w > 1024)
                fatal("--windows must be in [1, 1024]");
            sopts.aggregate.windows = uint32_t(w);
        } else if (arg == "--resched-every") {
            sopts.reschedEveryEpochs =
                uint32_t(needU64(i, "--resched-every"));
        } else if (arg == "--resched-deadline-ms") {
            sopts.reschedDeadlineMs =
                needU64(i, "--resched-deadline-ms");
        } else if (arg == "--rate-limit") {
            sopts.admission.tokensPerEpoch =
                needU64(i, "--rate-limit");
            // 0 would throttle every delta forever with no hint why.
            if (sopts.admission.tokensPerEpoch == 0)
                fatal("--rate-limit must be positive");
            sopts.admission.maxTokens =
                sopts.admission.tokensPerEpoch * 2;
        } else if (arg == "--snapshot-every") {
            sopts.snapshotEvery = needU64(i, "--snapshot-every");
        } else if (arg == "--max-deltas") {
            lopts.maxDeltas = needU64(i, "--max-deltas");
        } else if (arg == "--max-epochs") {
            lopts.maxEpochs = needU64(i, "--max-epochs");
        } else if (arg == "--schedule-out") {
            scheduleOut = needValue(i, "--schedule-out");
        } else if (arg == "--status-out") {
            statusOut = needValue(i, "--status-out");
        } else if (arg == "--report-out") {
            reportOut = needValue(i, "--report-out");
        } else if (arg == "--io-inject") {
            ioInject = needValue(i, "--io-inject");
        } else if (arg == "--io-inject-seed") {
            ioInjectSeed = needU64(i, "--io-inject-seed");
        } else if (arg == "--replay") {
            replayDir = needValue(i, "--replay");
        } else if (arg == "--connect") {
            connect = needValue(i, "--connect");
        } else if (arg == "--client") {
            clientId = needValue(i, "--client");
        } else if (arg == "--kind") {
            kindArg = needValue(i, "--kind");
            if (kindArg != "edge" && kindArg != "path")
                fatal("--kind wants edge or path");
        } else if (arg == "--seq-base") {
            seqBase = needU64(i, "--seq-base");
        } else if (arg == "--ack-timeout-ms") {
            copts.ackTimeoutMs = needU64(i, "--ack-timeout-ms");
        } else if (arg == "--backoff-ms") {
            copts.backoffMs = needU64(i, "--backoff-ms");
        } else if (arg == "--max-attempts") {
            copts.maxAttempts =
                uint32_t(needU64(i, "--max-attempts"));
        } else if (arg == "--tick-every") {
            tickEvery = needU64(i, "--tick-every");
        } else if (arg == "--flush-at-end") {
            flushAtEnd = true;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            usage();
            return 1;
        }
    }

    const bool serveMode = !listen.empty();
    const bool replayMode = !replayDir.empty();
    if (serveMode == replayMode) {
        std::fprintf(stderr,
                     "pick exactly one of --listen (serve) or "
                     "--replay (client)\n");
        usage();
        return 1;
    }
    if (serveMode) {
        if (stateDir.empty())
            fatal("serve mode requires --state DIR");
        if (!cacheDir.empty() && mkdir(cacheDir.c_str(), 0755) != 0 &&
            errno != EEXIST)
            fatal("cannot create --cache-dir '%s'", cacheDir.c_str());
        sopts.cacheDir = cacheDir;
        // The injector must outlive the ServeCore inside runServe, so
        // it lives here rather than in the flag loop.
        Vio vio(ioInjectSeed);
        if (!ioInject.empty()) {
            std::string err;
            if (!vio.parseFaults(ioInject, err))
                fatal("bad --io-inject: %s", err.c_str());
            sopts.vio = &vio;
        }
        return runServe(listen, stateDir, workloadName, configName,
                        sopts, lopts, scheduleOut, statusOut,
                        reportOut);
    }
    if (connect.empty() || clientId.empty())
        fatal("replay mode requires --connect ADDR and --client ID");
    return runReplay(replayDir, connect, clientId, kindArg, seqBase,
                     copts, tickEvery, flushAtEnd);
}
