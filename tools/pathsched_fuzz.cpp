/**
 * @file
 * Crash-isolated differential fuzzer over generated workloads.
 *
 * Sweep mode (the default) generates one workload per seed and runs it
 * through the differential/metamorphic oracle (gen/oracle.hpp) — each
 * seed in a forked child process re-exec'ing this binary, so a
 * pipeline crash, panic, or hang is a classified finding instead of
 * the end of the sweep.  On a failure the driver delta-reduces the
 * spec (gen/reduce.hpp), probing candidates through the same child
 * protocol, and writes the minimal spec to the corpus directory; the
 * one-line spec replays with --replay.
 *
 * Progress is journaled (support/journal.hpp): one CRC'd JSONL line
 * per seed, fsync'd, so a killed sweep is auditable after the fact.
 *
 * Examples:
 *   pathsched_fuzz --count 1000 --jobs 4
 *   pathsched_fuzz --spec "stores=0.3,loads=0.3,branch=tttf" --count 50
 *   pathsched_fuzz --replay 'seed=7,procs=2,drop=p1'
 *   pathsched_fuzz --replay tests/corpus/compact-memdep.spec
 *   pathsched_fuzz --print-ir 'seed=7'
 *
 * Exit codes: 0 = clean sweep / clean replay, 1 = user error,
 * 2 = findings (sweep or replay), 3 = internal error.
 * Child mode (--one) exits 0 clean, 10 with findings; anything else is
 * classified as a crash by the parent.
 */

#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

#include "gen/generator.hpp"
#include "gen/oracle.hpp"
#include "gen/reduce.hpp"
#include "ir/printer.hpp"
#include "support/journal.hpp"
#include "support/logging.hpp"
#include "support/strutil.hpp"
#include "support/vio.hpp"

using namespace pathsched;

namespace {

void
usage()
{
    std::printf(
        "usage: pathsched_fuzz [options]\n"
        "sweep mode (default):\n"
        "  --count N           seeds to sweep (default $PATHSCHED_"
        "FUZZ_COUNT or 200)\n"
        "  --seed-base N       first seed (default 1)\n"
        "  --spec KNOBS        base spec; the sweep overrides seed=\n"
        "  --jobs N            concurrent child processes (default 1)\n"
        "  --timeout-ms N      per-seed child deadline (default 120000)\n"
        "  --journal FILE      JSONL journal (default fuzz_journal."
        "jsonl)\n"
        "  --corpus-dir DIR    reduced failing specs land here\n"
        "                      (default fuzz_failures)\n"
        "  --keep-going        keep sweeping after a failure\n"
        "  --max-reduce N      failures to reduce (default 1)\n"
        "  --reduce-probes N   reduction probe budget (default 300)\n"
        "  --no-reduce         skip delta reduction\n"
        "  --no-meta           skip metamorphic checks\n"
        "  --configs LIST      comma list of registered backends\n"
        "                      (BB,M4,M16,P4,P4e,G4,G4e)\n"
        "                      (default all)\n"
        "  --threads N         pipeline worker threads per run\n"
        "other modes:\n"
        "  --one SPEC          check one spec in-process (child mode;\n"
        "                      exit 0 clean, 10 findings)\n"
        "  --result-file FILE  where --one writes classification +\n"
        "                      report\n"
        "  --replay SPEC|FILE  re-run one spec (or corpus file) with a\n"
        "                      full report; exit 0 clean, 2 findings\n"
        "  --print-ir SPEC     print the canonical spec, step bound and\n"
        "                      generated IR, then exit\n"
        "\n"
        "exit codes: 0 clean; 1 user error; 2 findings; 3 internal\n");
}

std::string
selfExe(const char *argv0)
{
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
    return argv0;
}

gen::GenSpec
parseSpecOrDie(const std::string &text)
{
    gen::GenSpec spec;
    std::string err;
    if (!gen::GenSpec::parse(text, spec, err))
        fatal("bad spec '%s': %s", text.c_str(), err.c_str());
    return spec;
}

bool
parseConfigList(const std::string &list,
                std::vector<pipeline::SchedConfig> &out)
{
    size_t pos = 0;
    while (pos <= list.size()) {
        size_t end = list.find(',', pos);
        if (end == std::string::npos)
            end = list.size();
        const std::string name = list.substr(pos, end - pos);
        bool found = false;
        for (const auto c : gen::allConfigs()) {
            if (name == pipeline::configName(c)) {
                out.push_back(c);
                found = true;
            }
        }
        if (!found)
            return false;
        if (end == list.size())
            break;
        pos = end + 1;
    }
    return !out.empty();
}

/**
 * Read a spec from @p arg: a file whose first non-comment line is the
 * spec, or literal spec text.  Corpus files may carry '#' comment
 * lines (e.g. "# mutation: compact-drop-memdep").
 */
std::string
specTextFrom(const std::string &arg)
{
    std::ifstream in(arg);
    if (!in)
        return arg;
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty() && line[0] != '#')
            return line;
    }
    fatal("no spec line in '%s'", arg.c_str());
}

/** Outcome of one crash-isolated child check. */
struct ChildResult
{
    bool clean = false;
    std::string klass; ///< "" when clean
};

/** Everything a child invocation needs to mirror the parent's oracle. */
struct ChildConfig
{
    std::string exe;
    std::string configsArg; ///< "" = all
    unsigned threads = 1;
    bool meta = true;
    uint64_t timeoutMs = 120'000;
    std::string tmpDir;
};

/** One in-flight child process checking one spec. */
struct Child
{
    pid_t pid = -1;
    uint64_t seed = 0;
    std::string resultFile;
};

/** Fork/exec this binary in --one mode for @p spec (non-blocking). */
Child
spawnChild(const ChildConfig &cc, const gen::GenSpec &spec)
{
    Child ch;
    ch.seed = spec.seed;
    ch.resultFile =
        strfmt("%s/one-%d-%llu.txt", cc.tmpDir.c_str(),
               int(::getpid()), (unsigned long long)spec.seed);
    std::vector<std::string> args = {cc.exe,
                                     "--one",
                                     spec.toString(),
                                     "--result-file",
                                     ch.resultFile,
                                     "--threads",
                                     std::to_string(cc.threads)};
    if (!cc.configsArg.empty()) {
        args.push_back("--configs");
        args.push_back(cc.configsArg);
    }
    if (!cc.meta)
        args.push_back("--no-meta");

    ch.pid = ::fork();
    if (ch.pid < 0)
        fatal("fork: %s", std::strerror(errno));
    if (ch.pid == 0) {
        std::vector<char *> argv;
        for (auto &a : args)
            argv.push_back(a.data());
        argv.push_back(nullptr);
        ::execv(cc.exe.c_str(), argv.data());
        _exit(127);
    }
    return ch;
}

/** Wait for @p ch (bounded by the timeout) and classify the outcome:
 *  clean, an oracle classification, or timeout/signal:N/exit:N. */
ChildResult
reapChild(const Child &ch, uint64_t timeout_ms)
{
    int status = 0;
    bool reaped = false;
    const uint64_t polls = timeout_ms / 10 + 1;
    for (uint64_t p = 0; p < polls; ++p) {
        if (::waitpid(ch.pid, &status, WNOHANG) == ch.pid) {
            reaped = true;
            break;
        }
        ::usleep(10'000);
    }
    if (!reaped) {
        ::kill(ch.pid, SIGKILL);
        ::waitpid(ch.pid, &status, 0);
    }

    ChildResult out;
    if (!reaped) {
        out.klass = "timeout";
    } else if (WIFSIGNALED(status)) {
        out.klass = strfmt("signal:%d", WTERMSIG(status));
    } else {
        const int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
        if (code == 0) {
            out.clean = true;
        } else if (code == 10) {
            std::string first;
            std::ifstream in(ch.resultFile);
            if (in)
                std::getline(in, first);
            out.klass = first.empty() ? "unclassified" : first;
        } else {
            out.klass = strfmt("exit:%d", code);
        }
    }
    ::unlink(ch.resultFile.c_str());
    return out;
}

ChildResult
runChild(const ChildConfig &cc, const gen::GenSpec &spec)
{
    return reapChild(spawnChild(cc, spec), cc.timeoutMs);
}

/** Child mode: run the oracle in-process and report through the
 *  result file.  Findings exit 10 so the parent can tell "oracle
 *  violation" from "pipeline crash" (any other non-zero). */
int
runOne(const gen::GenSpec &spec, const gen::OracleOptions &oopts,
       const std::string &result_file)
{
    const gen::OracleResult res = gen::checkSpec(spec, oopts);
    if (!result_file.empty()) {
        std::ofstream out(result_file);
        out << res.classification() << "\n" << res.report();
    }
    return res.ok() ? 0 : 10;
}

int
runReplay(const std::string &arg, const gen::OracleOptions &oopts)
{
    const gen::GenSpec spec = parseSpecOrDie(specTextFrom(arg));
    const gen::Workload w = gen::generate(spec);
    const gen::OracleResult res = gen::checkWorkload(w, oopts);
    std::printf("spec: %s\n", w.spec.toString().c_str());
    std::printf("procs: %u live, step bound %llu, ref ops %llu\n",
                gen::liveProcCount(w.spec),
                (unsigned long long)w.stepBound,
                (unsigned long long)res.refDynInstrs);
    if (res.ok()) {
        std::printf("oracle: clean\n");
        return 0;
    }
    std::printf("oracle: %zu finding(s), class %s\n%s",
                res.findings.size(), res.classification().c_str(),
                res.report().c_str());
    return 2;
}

int
runPrintIr(const std::string &text)
{
    const gen::Workload w = gen::generate(parseSpecOrDie(text));
    std::printf("spec: %s\n", w.spec.toString().c_str());
    std::printf("step-bound: %llu trip-shift: %u call-quota: %s\n",
                (unsigned long long)w.stepBound, w.tripShift,
                w.callQuota == UINT32_MAX
                    ? "none"
                    : std::to_string(w.callQuota).c_str());
    std::fputs(ir::toString(w.program).c_str(), stdout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    setPanicExitCode(3);

    uint64_t count = 200;
    if (const char *env = std::getenv("PATHSCHED_FUZZ_COUNT");
        env != nullptr && *env != '\0')
        count = std::strtoull(env, nullptr, 10);
    uint64_t seed_base = 1;
    std::string base_spec_text;
    unsigned jobs = 1;
    uint64_t timeout_ms = 120'000;
    std::string journal_path = "fuzz_journal.jsonl";
    std::string corpus_dir = "fuzz_failures";
    bool keep_going = false;
    uint64_t max_reduce = 1;
    uint32_t reduce_probes = 300;
    bool reduce = true;
    bool meta = true;
    std::string configs_arg;
    unsigned threads = 1;
    std::string one_spec;
    std::string result_file;
    std::string replay_arg;
    std::string print_ir_arg;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("option %s needs a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "--count") {
            count = std::stoull(next());
        } else if (arg == "--seed-base") {
            seed_base = std::stoull(next());
        } else if (arg == "--spec") {
            base_spec_text = next();
        } else if (arg == "--jobs") {
            jobs = unsigned(std::stoul(next()));
        } else if (arg == "--timeout-ms") {
            timeout_ms = std::stoull(next());
        } else if (arg == "--journal") {
            journal_path = next();
        } else if (arg == "--corpus-dir") {
            corpus_dir = next();
        } else if (arg == "--keep-going") {
            keep_going = true;
        } else if (arg == "--max-reduce") {
            max_reduce = std::stoull(next());
        } else if (arg == "--reduce-probes") {
            reduce_probes = uint32_t(std::stoul(next()));
        } else if (arg == "--no-reduce") {
            reduce = false;
        } else if (arg == "--no-meta") {
            meta = false;
        } else if (arg == "--configs") {
            configs_arg = next();
        } else if (arg == "--threads") {
            threads = unsigned(std::stoul(next()));
        } else if (arg == "--one") {
            one_spec = next();
        } else if (arg == "--result-file") {
            result_file = next();
        } else if (arg == "--replay") {
            replay_arg = next();
        } else if (arg == "--print-ir") {
            print_ir_arg = next();
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            usage();
            fatal("unknown option '%s'", arg.c_str());
        }
    }

    gen::OracleOptions oopts;
    oopts.metamorphic = meta;
    oopts.threads = threads;
    if (!configs_arg.empty() &&
        !parseConfigList(configs_arg, oopts.configs))
        fatal("bad --configs '%s'", configs_arg.c_str());

    if (!print_ir_arg.empty())
        return runPrintIr(print_ir_arg);
    if (!one_spec.empty())
        return runOne(parseSpecOrDie(one_spec), oopts, result_file);
    if (!replay_arg.empty())
        return runReplay(replay_arg, oopts);

    // ---- sweep mode ----
    if (jobs == 0)
        jobs = 1;
    const gen::GenSpec base = base_spec_text.empty()
                                  ? gen::GenSpec()
                                  : parseSpecOrDie(base_spec_text);

    std::error_code ec;
    std::filesystem::create_directories(corpus_dir, ec);
    if (ec)
        fatal("cannot create --corpus-dir '%s': %s", corpus_dir.c_str(),
              ec.message().c_str());

    Vio vio;
    JsonlJournal journal(journal_path, &vio, "fuzz-journal");
    if (Status st = journal.open(); !st.ok())
        fatal("cannot open journal '%s': %s", journal_path.c_str(),
              st.toString().c_str());
    auto jline = [&](const std::string &json) {
        if (Status st = journal.line(json); !st.ok())
            fatal("journal write failed: %s", st.toString().c_str());
    };

    ChildConfig cc;
    cc.exe = selfExe(argv[0]);
    cc.configsArg = configs_arg;
    cc.threads = threads;
    cc.meta = meta;
    cc.timeoutMs = timeout_ms;
    cc.tmpDir = corpus_dir;

    jline(strfmt("{\"event\":\"suite-start\","
                 "\"schema\":\"pathsched.fuzz.v1\",\"count\":%llu,"
                 "\"base\":%llu,\"spec\":\"%s\"}",
                 (unsigned long long)count,
                 (unsigned long long)seed_base,
                 jsonEscape(base.toString()).c_str()));

    struct Failure
    {
        gen::GenSpec spec;
        std::string klass;
    };
    std::vector<Failure> failures;
    uint64_t passed = 0, launched = 0;

    // Batches of `jobs` children; each batch fully reaped (journaled
    // in seed order) before the next launches.  A failure finishes the
    // current batch, then stops the sweep unless --keep-going.
    uint64_t next_seed = seed_base;
    const uint64_t end_seed = seed_base + count;
    bool stop = false;
    while (next_seed < end_seed && !stop) {
        std::vector<Child> batch;
        for (unsigned f = 0; f < jobs && next_seed < end_seed; ++f) {
            gen::GenSpec spec = base;
            spec.seed = next_seed++;
            ++launched;
            batch.push_back(spawnChild(cc, spec));
        }
        for (const Child &ch : batch) {
            const ChildResult r = reapChild(ch, timeout_ms);
            if (r.clean) {
                ++passed;
                jline(strfmt("{\"event\":\"seed\",\"seed\":%llu,"
                             "\"outcome\":\"ok\"}",
                             (unsigned long long)ch.seed));
                continue;
            }
            gen::GenSpec spec = base;
            spec.seed = ch.seed;
            jline(strfmt("{\"event\":\"seed\",\"seed\":%llu,"
                         "\"outcome\":\"fail\",\"class\":\"%s\","
                         "\"spec\":\"%s\"}",
                         (unsigned long long)ch.seed,
                         jsonEscape(r.klass).c_str(),
                         jsonEscape(spec.toString()).c_str()));
            failures.push_back({spec, r.klass});
            if (!keep_going)
                stop = true;
        }
    }

    // Reduce the first --max-reduce failures, each probe in a child.
    uint64_t reduced = 0;
    for (const Failure &f : failures) {
        if (!reduce || reduced >= max_reduce)
            break;
        jline(strfmt("{\"event\":\"reduce-start\",\"seed\":%llu,"
                     "\"class\":\"%s\"}",
                     (unsigned long long)f.spec.seed,
                     jsonEscape(f.klass).c_str()));
        // Probe only the failing configuration, and skip the
        // metamorphic phase unless the finding came from it: same
        // classification at a fraction of the cost.
        ChildConfig rc = cc;
        const size_t colon = f.klass.find(':');
        const std::string cfg =
            colon == std::string::npos ? "" : f.klass.substr(0, colon);
        std::vector<pipeline::SchedConfig> cfg_parse;
        if (!cfg.empty() && cfg != "-" && parseConfigList(cfg, cfg_parse))
            rc.configsArg = cfg;
        if (f.klass.find(":meta-") == std::string::npos)
            rc.meta = false;
        gen::ReduceStats stats;
        const gen::GenSpec minimal = gen::reduceSpec(
            f.spec,
            [&](const gen::GenSpec &cand) {
                return runChild(rc, cand).klass == f.klass;
            },
            &stats, reduce_probes);
        const std::string file = strfmt("%s/seed-%llu.spec",
                                        corpus_dir.c_str(),
                                        (unsigned long long)f.spec.seed);
        {
            std::ofstream out(file);
            out << minimal.toString() << "\n";
            out << "# class: " << f.klass << "\n";
            if (const char *mut = std::getenv("PATHSCHED_MUTATION");
                mut != nullptr && *mut != '\0')
                out << "# mutation: " << mut << "\n";
        }
        jline(strfmt("{\"event\":\"reduce-done\",\"seed\":%llu,"
                     "\"probes\":%u,\"accepted\":%u,\"live-procs\":%u,"
                     "\"spec\":\"%s\",\"file\":\"%s\"}",
                     (unsigned long long)f.spec.seed, stats.probes,
                     stats.accepted, gen::liveProcCount(minimal),
                     jsonEscape(minimal.toString()).c_str(),
                     jsonEscape(file).c_str()));
        std::fprintf(stderr,
                     "reduced seed %llu (%s) to %u live proc(s): %s\n",
                     (unsigned long long)f.spec.seed, f.klass.c_str(),
                     gen::liveProcCount(minimal),
                     minimal.toString().c_str());
        ++reduced;
    }

    jline(strfmt("{\"event\":\"suite-end\",\"launched\":%llu,"
                 "\"ok\":%llu,\"failed\":%zu,\"reduced\":%llu}",
                 (unsigned long long)launched,
                 (unsigned long long)passed, failures.size(),
                 (unsigned long long)reduced));
    std::printf("fuzz: %llu/%llu seeds clean, %zu failure(s)%s\n",
                (unsigned long long)passed,
                (unsigned long long)launched, failures.size(),
                failures.empty()
                    ? ""
                    : strfmt(", first class %s",
                             failures.front().klass.c_str())
                          .c_str());
    return failures.empty() ? 0 : 2;
}
