/**
 * @file
 * Regenerates Figure 7: the number of basic blocks *executed* per
 * dynamic superblock (the paper's gray bars) compared to the *size* in
 * blocks of a dynamic superblock (white extensions), dynamically
 * weighted, for the M4, M16, P4e and P4 schemes.
 *
 * Expected shape: the path-based schemes reach further into their
 * superblocks ("average" rises), often with smaller superblocks than
 * M16; for the go/li analogues M4 -> M16 barely moves the average.
 */

#include <cstdio>

#include "common.hpp"

using namespace pathsched;

int
main()
{
    bench::ExperimentRunner runner; // perfect cache, as in Fig. 7

    const pipeline::SchedConfig configs[] = {
        pipeline::SchedConfig::M4, pipeline::SchedConfig::M16,
        pipeline::SchedConfig::P4e, pipeline::SchedConfig::P4};

    std::printf("Figure 7: blocks executed per dynamic superblock "
                "(exec) vs superblock size in blocks (size)\n\n");
    std::printf("%-8s", "bench");
    for (const auto config : configs)
        std::printf("  %14s", pipeline::configName(config));
    std::printf("\n%-8s", "");
    for (size_t i = 0; i < 4; ++i)
        std::printf("  %14s", "exec/size");
    std::printf("\n");

    for (const auto &name : bench::allBenchmarks()) {
        std::printf("%-8s", name.c_str());
        for (const auto config : configs) {
            const auto &r = runner.run(name, config);
            std::printf("  %6.2f/%7.2f", r.test.sbAvgBlocksExecuted(),
                        r.test.sbAvgBlocksInSuperblock());
        }
        std::printf("\n");
    }
    return 0;
}
