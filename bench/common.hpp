/**
 * @file
 * Shared experiment runner for the per-figure bench binaries.
 *
 * Each bench binary regenerates one table or figure of the paper.  The
 * runner executes (workload x config) pipelines once, caches results
 * within the process, and provides the normalization and formatting
 * the figures use (all figures normalize against "M4", the edge-based
 * approach at unroll factor 4).
 */

#ifndef PATHSCHED_BENCH_COMMON_HPP
#define PATHSCHED_BENCH_COMMON_HPP

#include <map>
#include <string>
#include <vector>

#include "pipeline/pipeline.hpp"
#include "workloads/workloads.hpp"

namespace pathsched::bench {

/** Caching (workload, config, cache-on/off) -> PipelineResult runner. */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(pipeline::PipelineOptions base_options =
                                  pipeline::PipelineOptions());

    /** Run (or fetch) one configuration of one workload. */
    const pipeline::PipelineResult &run(const std::string &workload,
                                        pipeline::SchedConfig config);

    /** The workload definition (builds lazily, then caches). */
    const workloads::Workload &workload(const std::string &name);

    const pipeline::PipelineOptions &options() const { return options_; }

  private:
    pipeline::PipelineOptions options_;
    std::map<std::string, workloads::Workload> workloads_;
    std::map<std::pair<std::string, pipeline::SchedConfig>,
             pipeline::PipelineResult>
        results_;
};

/** The benchmarks the paper's figures draw, in x-axis order. */
std::vector<std::string> allBenchmarks();       ///< Table 1, Figs. 4/6/7
std::vector<std::string> nonMicroBenchmarks();  ///< Fig. 5 (wc..vortex)

/** Print a standard figure table: one row per benchmark, one column
 *  per (label, normalized value) series. */
void printNormalizedTable(
    const std::string &title,
    const std::vector<std::string> &benchmarks,
    const std::vector<std::pair<std::string, std::vector<double>>> &series);

} // namespace pathsched::bench

#endif // PATHSCHED_BENCH_COMMON_HPP
