/**
 * @file
 * Shared experiment runner for the per-figure bench binaries.
 *
 * Each bench binary regenerates one table or figure of the paper.  The
 * runner executes (workload x config) pipelines once, caches results
 * within the process, and provides the normalization and formatting
 * the figures use (all figures normalize against "M4", the edge-based
 * approach at unroll factor 4).
 */

#ifndef PATHSCHED_BENCH_COMMON_HPP
#define PATHSCHED_BENCH_COMMON_HPP

#include <map>
#include <string>
#include <vector>

#include "pipeline/pipeline.hpp"
#include "workloads/workloads.hpp"

namespace pathsched::obs {
class JsonWriter;
}

namespace pathsched::bench {

/** Caching (workload, config, cache-on/off) -> PipelineResult runner. */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(pipeline::PipelineOptions base_options =
                                  pipeline::PipelineOptions());

    /** Run (or fetch) one configuration of one workload. */
    const pipeline::PipelineResult &run(const std::string &workload,
                                        pipeline::SchedConfig config);

    /** The workload definition (builds lazily, then caches). */
    const workloads::Workload &workload(const std::string &name);

    const pipeline::PipelineOptions &options() const { return options_; }

  private:
    pipeline::PipelineOptions options_;
    std::map<std::string, workloads::Workload> workloads_;
    std::map<std::pair<std::string, pipeline::SchedConfig>,
             pipeline::PipelineResult>
        results_;
};

/** The benchmarks the paper's figures draw, in x-axis order. */
std::vector<std::string> allBenchmarks();       ///< Table 1, Figs. 4/6/7
std::vector<std::string> nonMicroBenchmarks();  ///< Fig. 5 (wc..vortex)

/** Print a standard figure table: one row per benchmark, one column
 *  per (label, normalized value) series. */
void printNormalizedTable(
    const std::string &title,
    const std::vector<std::string> &benchmarks,
    const std::vector<std::pair<std::string, std::vector<double>>> &series);

/**
 * JSON emitter for the BENCH_*.json trajectory files the ROADMAP
 * tracks.  Each bench binary creates one, adds a row per measurement,
 * and writes "BENCH_<name>.json":
 *
 *   {"schema":"pathsched.bench.v1", "bench":"table1",
 *    "rows":[{"bench":"wc","config":"BB","metrics":{"cycles":...}}]}
 *
 * Metric keys are free-form; row() seeds the standard pipeline
 * metrics, metric() adds or overrides one.
 */
class JsonReport
{
  public:
    /** @p name is the table/figure tag, e.g. "table1". */
    explicit JsonReport(std::string name) : name_(std::move(name)) {}

    /** Append a row seeded with @p r's standard metrics (cycles,
     *  instrs, branches, codeBytes, missRate, sb stats). */
    void row(const std::string &bench, const pipeline::PipelineResult &r);

    /** Append an empty row (config may be a series label). */
    void row(const std::string &bench, const std::string &config);

    /** Add/override one metric on the most recent row. */
    void metric(const std::string &key, double value);

    /** The whole report as a JSON document. */
    std::string json() const;

    /** Write json() to "BENCH_<name>.json" (or @p path when given);
     *  false on I/O failure.  Prints the destination to stderr. */
    bool write(const std::string &path = "") const;

  private:
    struct Row
    {
        std::string bench;
        std::string config;
        std::vector<std::pair<std::string, double>> metrics;
    };
    std::string name_;
    std::vector<Row> rows_;
};

} // namespace pathsched::bench

#endif // PATHSCHED_BENCH_COMMON_HPP
