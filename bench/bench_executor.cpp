/**
 * @file
 * Executor scaling and stage-cache benchmark.
 *
 * Three measurements, all written to BENCH_executor.json:
 *
 *  1. Batch sweep scaling: every (workload x config) pipeline run of a
 *     Table-1 sweep submitted as one task to the work-stealing
 *     executor, at 1 worker vs 8.  The runs are independent, so on a
 *     multi-core machine the 8-thread sweep should approach the core
 *     count; on a single core both degenerate to the serial sweep.
 *  2. In-run scaling: the largest workload (gcc, 259 procedures) with
 *     the pipeline's own per-procedure executor at 1 vs 8 threads.
 *     Amdahl applies — the train/test/verify interpreter runs are
 *     serial — so this is a smaller, honest number.
 *  3. Stage-cache effect: the same run cold vs warm (in-memory tier),
 *     where the warm run skips every transform chain.
 *
 * Determinism is asserted, not assumed: each measurement cross-checks
 * cycle counts against the serial baseline before timing is reported.
 */

#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>

#include "common.hpp"
#include "pipeline/cache.hpp"
#include "pipeline/executor.hpp"
#include "support/logging.hpp"

using namespace pathsched;

namespace {

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

/** One full sweep, each pipeline run a task on the executor; returns
 *  wall ms and fills cycles per (workload, config) for verification. */
double
sweep(const std::vector<std::string> &benchmarks,
      const std::vector<pipeline::SchedConfig> &configs,
      unsigned threads,
      std::map<std::pair<std::string, pipeline::SchedConfig>,
               uint64_t> &cycles)
{
    // Workloads build once, outside the timed region; tasks share them
    // read-only, the way a batch driver shares its corpus.
    std::map<std::string, workloads::Workload> corpus;
    for (const auto &name : benchmarks)
        corpus.emplace(name, workloads::makeByName(name));

    std::mutex mu;
    pipeline::TaskGraph graph;
    const auto t0 = Clock::now();
    for (const auto &name : benchmarks) {
        for (const auto config : configs) {
            const workloads::Workload &w = corpus.at(name);
            graph.add([&, name, config] {
                pipeline::PipelineOptions opts; // serial inside a task
                const auto r = pipeline::runPipeline(
                    w.program, w.train, w.test, config, opts);
                if (!r.status.ok())
                    panic("%s/%s failed: %s", name.c_str(),
                          r.name.c_str(), r.status.toString().c_str());
                std::lock_guard<std::mutex> lk(mu);
                cycles[{name, config}] = r.test.cycles;
            });
        }
    }
    pipeline::Executor ex(threads, pipeline::ExecPolicy::Steal);
    ex.run(graph);
    return msSince(t0);
}

} // namespace

int
main()
{
    const std::vector<std::string> benchmarks = bench::allBenchmarks();
    const std::vector<pipeline::SchedConfig> configs = {
        pipeline::SchedConfig::BB, pipeline::SchedConfig::M4,
        pipeline::SchedConfig::P4};

    bench::JsonReport report("executor");

    // --- 1. Batch sweep at 1 vs 8 workers. ---
    std::map<std::pair<std::string, pipeline::SchedConfig>, uint64_t>
        serial_cycles, par_cycles;
    const double sweep1 = sweep(benchmarks, configs, 1, serial_cycles);
    const double sweep8 = sweep(benchmarks, configs, 8, par_cycles);
    if (par_cycles != serial_cycles)
        panic("8-worker sweep changed results vs serial");
    const double sweep_speedup = sweep1 / sweep8;
    std::printf("batch sweep (%zu runs): 1 worker %.0f ms, "
                "8 workers %.0f ms  (speedup %.2fx, %u cores)\n",
                serial_cycles.size(), sweep1, sweep8, sweep_speedup,
                pipeline::Executor::hardwareThreads());
    report.row("sweep", "1-worker");
    report.metric("ms", sweep1);
    report.row("sweep", "8-worker");
    report.metric("ms", sweep8);
    report.metric("speedup", sweep_speedup);
    report.metric("cores",
                  double(pipeline::Executor::hardwareThreads()));

    // --- 2. In-run per-procedure parallelism on the largest program.
    const auto gcc = workloads::makeByName("gcc");
    auto timedRun = [&](unsigned threads,
                        pipeline::StageCache *cache) -> double {
        pipeline::PipelineOptions opts;
        opts.executor.threads = threads;
        opts.executor.cache = cache;
        const auto t0 = Clock::now();
        const auto r = pipeline::runPipeline(gcc.program, gcc.train,
                                             gcc.test,
                                             pipeline::SchedConfig::P4,
                                             opts);
        const double ms = msSince(t0);
        if (!r.status.ok())
            panic("gcc/P4 failed: %s", r.status.toString().c_str());
        const uint64_t want =
            serial_cycles.at({"gcc", pipeline::SchedConfig::P4});
        if (r.test.cycles != want)
            panic("gcc/P4 cycles drifted: %llu vs %llu",
                  (unsigned long long)r.test.cycles,
                  (unsigned long long)want);
        return ms;
    };
    const double run1 = timedRun(1, nullptr);
    const double run8 = timedRun(8, nullptr);
    std::printf("gcc/P4 in-run: 1 thread %.0f ms, 8 threads %.0f ms "
                "(speedup %.2fx)\n",
                run1, run8, run1 / run8);
    report.row("gcc-P4", "1-thread");
    report.metric("ms", run1);
    report.row("gcc-P4", "8-thread");
    report.metric("ms", run8);
    report.metric("speedup", run1 / run8);

    // --- 3. Cold vs warm stage cache. ---
    pipeline::StageCache cache;
    const double cold = timedRun(1, &cache);
    const double warm = timedRun(1, &cache);
    std::printf("gcc/P4 stage cache: cold %.0f ms, warm %.0f ms "
                "(speedup %.2fx; %llu hits)\n",
                cold, warm, cold / warm,
                (unsigned long long)cache.stats().hits);
    report.row("gcc-P4-cache", "cold");
    report.metric("ms", cold);
    report.row("gcc-P4-cache", "warm");
    report.metric("ms", warm);
    report.metric("speedup", cold / warm);
    report.metric("hits", double(cache.stats().hits));

    if (!report.write())
        std::fprintf(stderr,
                     "warning: could not write BENCH_executor.json\n");
    return 0;
}
