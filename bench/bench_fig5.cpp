/**
 * @file
 * Regenerates Figure 5: cycle counts with the 32 KB direct-mapped
 * instruction cache (6-cycle miss penalty); "P4" and "P4e" normalized
 * against the edge-based approach (M4).  Microbenchmarks are omitted
 * as in the paper ("they always fit in the cache").
 *
 * Expected shape: P4 keeps most of its ideal-cache win; at least one
 * large-footprint benchmark loses under P4's code expansion; P4e
 * recovers it and outperforms the edge-based approach across the
 * SPEC-like set.
 */

#include <cstdio>

#include "common.hpp"

using namespace pathsched;

int
main()
{
    pipeline::PipelineOptions opts;
    opts.useICache = true;
    bench::ExperimentRunner runner(opts);

    std::vector<double> p4, p4e;
    const auto benchmarks = bench::nonMicroBenchmarks();
    for (const auto &name : benchmarks) {
        const auto &m4 = runner.run(name, pipeline::SchedConfig::M4);
        const auto &r4 = runner.run(name, pipeline::SchedConfig::P4);
        const auto &r4e = runner.run(name, pipeline::SchedConfig::P4e);
        p4.push_back(double(r4.test.cycles) / double(m4.test.cycles));
        p4e.push_back(double(r4e.test.cycles) / double(m4.test.cycles));
    }
    bench::printNormalizedTable(
        "Figure 5: normalized cycle counts, 32KB direct-mapped I-cache "
        "(vs M4)",
        benchmarks, {{"P4", p4}, {"P4e", p4e}});
    return 0;
}
