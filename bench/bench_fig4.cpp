/**
 * @file
 * Regenerates Figure 4: cycle counts for path-based superblock
 * scheduling (P4) normalized against the edge-based approach (M4).
 * Both approaches are limited to an unroll factor of 4 and assume an
 * ideal instruction cache.
 *
 * Expected shape: 2-16% reduction on the SPEC-like set, much larger
 * reductions on the microbenchmarks.
 */

#include <cstdio>

#include "common.hpp"

using namespace pathsched;

int
main()
{
    bench::ExperimentRunner runner; // default options: perfect I-cache

    std::vector<double> p4;
    const auto benchmarks = bench::allBenchmarks();
    for (const auto &name : benchmarks) {
        const auto &m4 = runner.run(name, pipeline::SchedConfig::M4);
        const auto &r = runner.run(name, pipeline::SchedConfig::P4);
        p4.push_back(double(r.test.cycles) / double(m4.test.cycles));
    }
    bench::printNormalizedTable(
        "Figure 4: normalized cycle counts, perfect I-cache (vs M4)",
        benchmarks, {{"P4", p4}});
    return 0;
}
