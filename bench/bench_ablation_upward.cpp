/**
 * @file
 * Upward-growth ablation (footnote 2): "We have not included support
 * for upward trace growth in our current implementation ... we
 * predict that this additional capability will not noticeably improve
 * the performance of our scheduled code."
 *
 * We did implement it (both profile modes), so the prediction is
 * testable: this bench compares P4 and M4 with and without upward
 * trace growth.
 */

#include <cstdio>

#include "common.hpp"

using namespace pathsched;

int
main()
{
    bench::ExperimentRunner down_runner;

    pipeline::PipelineOptions up;
    up.growUpward = true;
    bench::ExperimentRunner up_runner(up);

    std::vector<double> p4_down, p4_up, m4_up;
    const auto benchmarks = bench::allBenchmarks();
    for (const auto &name : benchmarks) {
        const auto &m4 = down_runner.run(name, pipeline::SchedConfig::M4);
        const auto &p4 = down_runner.run(name, pipeline::SchedConfig::P4);
        const auto &m4u = up_runner.run(name, pipeline::SchedConfig::M4);
        const auto &p4u = up_runner.run(name, pipeline::SchedConfig::P4);
        p4_down.push_back(double(p4.test.cycles) /
                          double(m4.test.cycles));
        p4_up.push_back(double(p4u.test.cycles) /
                        double(m4.test.cycles));
        m4_up.push_back(double(m4u.test.cycles) /
                        double(m4.test.cycles));
    }
    bench::printNormalizedTable(
        "Upward-growth ablation: cycles normalized vs plain M4",
        benchmarks,
        {{"P4", p4_down}, {"P4+up", p4_up}, {"M4+up", m4_up}});
    return 0;
}
