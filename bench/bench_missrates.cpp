/**
 * @file
 * Regenerates the §4 instruction-cache miss-rate discussion: the 32 KB
 * direct-mapped I-cache miss rate under the edge-based (M4) and
 * path-based (P4, P4e) approaches, plus code sizes.
 *
 * The paper highlights gcc (2.67% -> 3.92%) and go (2.53% -> 4.67%):
 * path-based code expansion raises the miss rates of the benchmarks
 * with non-trivial footprints, and the P4e heuristic pulls the
 * expansion back.
 */

#include <cstdio>

#include "common.hpp"

using namespace pathsched;

int
main()
{
    pipeline::PipelineOptions opts;
    opts.useICache = true;
    bench::ExperimentRunner runner(opts);

    std::printf("I-cache miss rates and code sizes "
                "(32KB direct-mapped, 32B lines, 6-cycle penalty)\n\n");
    std::printf("%-8s %9s %9s %9s   %10s %10s %10s\n", "bench",
                "M4 miss", "P4 miss", "P4e miss", "M4 KB", "P4 KB",
                "P4e KB");

    for (const auto &name : bench::nonMicroBenchmarks()) {
        const auto &m4 = runner.run(name, pipeline::SchedConfig::M4);
        const auto &p4 = runner.run(name, pipeline::SchedConfig::P4);
        const auto &p4e = runner.run(name, pipeline::SchedConfig::P4e);
        auto rate = [](const pipeline::PipelineResult &r) {
            return r.test.icacheAccesses == 0
                       ? 0.0
                       : 100.0 * double(r.test.icacheMisses) /
                             double(r.test.icacheAccesses);
        };
        std::printf("%-8s %8.2f%% %8.2f%% %8.2f%%   %10.1f %10.1f "
                    "%10.1f\n",
                    name.c_str(), rate(m4), rate(p4), rate(p4e),
                    double(m4.codeBytes) / 1024.0,
                    double(p4.codeBytes) / 1024.0,
                    double(p4e.codeBytes) / 1024.0);
    }
    return 0;
}
