/**
 * @file
 * Path-depth ablation (§2.2): the paper profiles general paths of up
 * to 15 conditional branches.  This sweep shows how the P4 result
 * degrades as the profiling depth shrinks: shallow windows lose the
 * cross-iteration correlation that drives path-based unrolling and
 * correlated-branch formation.
 */

#include <cstdio>

#include "common.hpp"

using namespace pathsched;

int
main()
{
    const uint32_t depths[] = {1, 3, 7, 15};
    // A representative subset: the correlation-heavy micros plus two
    // loop benchmarks and one interpreter.
    const std::vector<std::string> benchmarks = {"alt", "ph", "corr",
                                                 "wc", "esp", "perl"};

    std::vector<std::pair<std::string, std::vector<double>>> series;
    for (const uint32_t depth : depths) {
        pipeline::PipelineOptions opts;
        opts.pathParams.maxBranches = depth;
        bench::ExperimentRunner runner(opts);
        std::vector<double> ratios;
        for (const auto &name : benchmarks) {
            const auto &m4 = runner.run(name, pipeline::SchedConfig::M4);
            const auto &p4 = runner.run(name, pipeline::SchedConfig::P4);
            ratios.push_back(double(p4.test.cycles) /
                             double(m4.test.cycles));
        }
        series.emplace_back("depth " + std::to_string(depth),
                            std::move(ratios));
    }
    bench::printNormalizedTable(
        "Path-depth ablation: P4 cycles normalized vs M4, by profiling "
        "depth (branches per path)",
        benchmarks, series);
    return 0;
}
