/**
 * @file
 * Block-layout ablation: assign each procedure's superblocks
 * contiguous low addresses ("hot first", the intra-procedural half of
 * Pettis-Hansen chaining) and measure the I-cache effect on the
 * large-footprint benchmarks under every configuration.
 */

#include <cstdio>

#include "common.hpp"
#include "layout/code_layout.hpp"

using namespace pathsched;

int
main()
{
    pipeline::PipelineOptions by_id;
    by_id.useICache = true;
    bench::ExperimentRunner id_runner(by_id);

    pipeline::PipelineOptions hot;
    hot.useICache = true;
    hot.blockOrder = layout::BlockOrder::HotFirst;
    bench::ExperimentRunner hot_runner(hot);

    std::printf("Block-layout ablation (32KB I-cache): miss rates by "
                "block order\n\n");
    std::printf("%-8s %-5s %12s %12s %14s\n", "bench", "cfg",
                "id-order", "hot-first", "cycle ratio");
    for (const auto &name : {std::string("gcc"), std::string("go")}) {
        for (const auto config :
             {pipeline::SchedConfig::M4, pipeline::SchedConfig::P4,
              pipeline::SchedConfig::P4e}) {
            const auto &a = id_runner.run(name, config);
            const auto &b = hot_runner.run(name, config);
            auto rate = [](const pipeline::PipelineResult &r) {
                return r.test.icacheAccesses
                           ? 100.0 * double(r.test.icacheMisses) /
                                 double(r.test.icacheAccesses)
                           : 0.0;
            };
            std::printf("%-8s %-5s %11.2f%% %11.2f%% %14.3f\n",
                        name.c_str(), pipeline::configName(config),
                        rate(a), rate(b),
                        double(b.test.cycles) / double(a.test.cycles));
        }
    }
    return 0;
}
