/**
 * @file
 * Scheduler-priority ablation: the compactor picks ready instructions
 * by critical-path height (standard list scheduling).  This bench
 * swaps in a naive source-order priority to quantify how much of the
 * end-to-end win depends on that design choice, for both the P4 and
 * M4 formations.
 */

#include <cstdio>

#include "common.hpp"
#include "sched/scheduler.hpp"

using namespace pathsched;

int
main()
{
    bench::ExperimentRunner height_runner;

    pipeline::PipelineOptions naive;
    naive.schedPriority = sched::SchedPriority::SourceOrder;
    bench::ExperimentRunner naive_runner(naive);

    std::vector<double> p4_cp, p4_src, m4_src;
    const auto benchmarks = bench::allBenchmarks();
    for (const auto &name : benchmarks) {
        const auto &m4 = height_runner.run(name, pipeline::SchedConfig::M4);
        const auto &p4 = height_runner.run(name, pipeline::SchedConfig::P4);
        const auto &m4n = naive_runner.run(name, pipeline::SchedConfig::M4);
        const auto &p4n = naive_runner.run(name, pipeline::SchedConfig::P4);
        p4_cp.push_back(double(p4.test.cycles) / double(m4.test.cycles));
        p4_src.push_back(double(p4n.test.cycles) /
                         double(m4.test.cycles));
        m4_src.push_back(double(m4n.test.cycles) /
                         double(m4.test.cycles));
    }
    bench::printNormalizedTable(
        "Scheduler-priority ablation: cycles normalized vs M4 "
        "(critical-path)",
        benchmarks,
        {{"P4/height", p4_cp},
         {"P4/source", p4_src},
         {"M4/source", m4_src}});
    return 0;
}
