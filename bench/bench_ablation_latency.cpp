/**
 * @file
 * Latency ablation (§3.2): "we have also generated results with more
 * realistic instruction latencies, and we found that the benefit of
 * path-profile-based scheduling increased."
 *
 * Runs P4-vs-M4 under unit latencies and under the realistic table
 * (loads/multiplies 3 cycles, divides 8) and prints both ratios.
 */

#include <cstdio>

#include "common.hpp"
#include "machine/machine.hpp"

using namespace pathsched;

int
main()
{
    bench::ExperimentRunner unit_runner; // unit latencies

    pipeline::PipelineOptions realistic;
    realistic.machine = machine::MachineModel::realisticLatency();
    bench::ExperimentRunner real_runner(realistic);

    std::vector<double> unit_ratio, real_ratio;
    const auto benchmarks = bench::allBenchmarks();
    for (const auto &name : benchmarks) {
        {
            const auto &m4 = unit_runner.run(name,
                                             pipeline::SchedConfig::M4);
            const auto &p4 = unit_runner.run(name,
                                             pipeline::SchedConfig::P4);
            unit_ratio.push_back(double(p4.test.cycles) /
                                 double(m4.test.cycles));
        }
        {
            const auto &m4 = real_runner.run(name,
                                             pipeline::SchedConfig::M4);
            const auto &p4 = real_runner.run(name,
                                             pipeline::SchedConfig::P4);
            real_ratio.push_back(double(p4.test.cycles) /
                                 double(m4.test.cycles));
        }
    }
    bench::printNormalizedTable(
        "Latency ablation: P4 cycles normalized vs M4 "
        "(lower = bigger path-profile benefit)",
        benchmarks,
        {{"unit", unit_ratio}, {"realistic", real_ratio}});
    return 0;
}
