/**
 * @file
 * Regenerates Table 1: per-benchmark binary size and dynamic branch /
 * cycle / instruction counts of the basic-block-scheduled build on the
 * experimental machine model (§3.3).  Also writes BENCH_table1.json,
 * the machine-readable row the ROADMAP's perf trajectory tracks.
 */

#include <cstdio>

#include "common.hpp"
#include "support/strutil.hpp"

using namespace pathsched;

int
main()
{
    bench::ExperimentRunner runner;
    bench::JsonReport report("table1");

    std::printf("Table 1: benchmarks, data sets, and statistics\n");
    std::printf("(basic-block scheduled, perfect I-cache; counts are "
                "raw, the paper reports millions)\n\n");
    std::printf("%-8s %-10s %10s %14s %14s %14s\n", "bench", "group",
                "size(KB)", "branches", "cycles", "instrs");

    for (const auto &name : bench::allBenchmarks()) {
        const auto &w = runner.workload(name);
        const auto &r = runner.run(name, pipeline::SchedConfig::BB);
        std::printf("%-8s %-10s %10.1f %14s %14s %14s\n", name.c_str(),
                    w.group.c_str(), double(r.codeBytes) / 1024.0,
                    withCommas(r.test.dynBranches).c_str(),
                    withCommas(r.test.cycles).c_str(),
                    withCommas(r.test.dynInstrs).c_str());
        report.row(name, r);
    }
    if (!report.write())
        std::fprintf(stderr, "warning: could not write BENCH_table1.json\n");
    return 0;
}
