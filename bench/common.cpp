#include "common.hpp"

#include <cstdio>
#include <fstream>

#include "obs/json.hpp"
#include "support/logging.hpp"
#include "support/statistics.hpp"
#include "support/strutil.hpp"

namespace pathsched::bench {

ExperimentRunner::ExperimentRunner(pipeline::PipelineOptions base_options)
    : options_(base_options)
{}

const workloads::Workload &
ExperimentRunner::workload(const std::string &name)
{
    auto it = workloads_.find(name);
    if (it == workloads_.end())
        it = workloads_.emplace(name, workloads::makeByName(name)).first;
    return it->second;
}

const pipeline::PipelineResult &
ExperimentRunner::run(const std::string &name,
                      pipeline::SchedConfig config)
{
    const auto key = std::make_pair(name, config);
    auto it = results_.find(key);
    if (it == results_.end()) {
        const auto &w = workload(name);
        it = results_
                 .emplace(key, pipeline::runPipeline(w.program, w.train,
                                                     w.test, config,
                                                     options_))
                 .first;
    }
    return it->second;
}

std::vector<std::string>
allBenchmarks()
{
    return workloads::benchmarkNames();
}

std::vector<std::string>
nonMicroBenchmarks()
{
    // Fig. 5's x-axis starts at wc: the three microbenchmarks are
    // excluded ("they are so small that they always fit in the cache").
    return {"wc", "com", "eqn", "esp", "gcc", "go", "ijpeg",
            "li", "m88k", "perl", "vortex"};
}

void
printNormalizedTable(
    const std::string &title,
    const std::vector<std::string> &benchmarks,
    const std::vector<std::pair<std::string, std::vector<double>>> &series)
{
    std::printf("\n%s\n", title.c_str());
    std::printf("%s\n", std::string(title.size(), '-').c_str());
    std::printf("%-8s", "bench");
    for (const auto &[label, values] : series) {
        (void)values;
        std::printf("  %10s", label.c_str());
    }
    std::printf("\n");
    for (size_t i = 0; i < benchmarks.size(); ++i) {
        std::printf("%-8s", benchmarks[i].c_str());
        for (const auto &[label, values] : series)
            std::printf("  %10.3f", values[i]);
        std::printf("\n");
    }
    std::printf("%-8s", "geomean");
    for (const auto &[label, values] : series) {
        (void)label;
        std::printf("  %10.3f", geomean(values));
    }
    std::printf("\n");
}

void
JsonReport::row(const std::string &bench,
                const pipeline::PipelineResult &r)
{
    row(bench, r.name);
    metric("cycles", double(r.test.cycles));
    metric("instrs", double(r.test.dynInstrs));
    metric("branches", double(r.test.dynBranches));
    metric("codeBytes", double(r.codeBytes));
    if (r.test.icacheAccesses != 0)
        metric("missRate", double(r.test.icacheMisses) /
                               double(r.test.icacheAccesses));
    metric("sbAvgBlocksExecuted", r.test.sbAvgBlocksExecuted());
    metric("sbAvgBlocksInSuperblock", r.test.sbAvgBlocksInSuperblock());
}

void
JsonReport::row(const std::string &bench, const std::string &config)
{
    rows_.push_back({bench, config, {}});
}

void
JsonReport::metric(const std::string &key, double value)
{
    ps_assert_msg(!rows_.empty(), "JsonReport::metric before any row");
    for (auto &[k, v] : rows_.back().metrics) {
        if (k == key) {
            v = value;
            return;
        }
    }
    rows_.back().metrics.emplace_back(key, value);
}

std::string
JsonReport::json() const
{
    obs::JsonWriter w;
    w.beginObject();
    w.member("schema", "pathsched.bench.v1");
    w.member("bench", name_);
    w.key("rows");
    w.beginArray();
    for (const Row &r : rows_) {
        w.beginObject();
        w.member("bench", r.bench);
        w.member("config", r.config);
        w.key("metrics");
        w.beginObject();
        for (const auto &[k, v] : r.metrics)
            w.member(k, v);
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

bool
JsonReport::write(const std::string &path) const
{
    const std::string file =
        path.empty() ? "BENCH_" + name_ + ".json" : path;
    std::ofstream out(file);
    if (!out)
        return false;
    out << json() << '\n';
    if (!out)
        return false;
    std::fprintf(stderr, "wrote %zu rows to %s\n", rows_.size(),
                 file.c_str());
    return true;
}

} // namespace pathsched::bench
