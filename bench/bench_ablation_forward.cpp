/**
 * @file
 * Forward-vs-general path ablation (§2.2): prior path profiling
 * (Ball-Larus, Bala) collected *forward* paths, chopped at back edges.
 * The paper argues general paths matter because they "remain exact for
 * traces that cover more than a single iteration of a loop" and
 * "capture branch correlation that spans multiple loop iterations".
 *
 * This bench runs P4 twice — once on general paths, once with the
 * profiler restricted to forward paths — and compares against M4.
 * On the periodic/phased loops, forward paths lose exactly the
 * cross-back-edge information that drives path-based unrolling.
 */

#include <cstdio>

#include "common.hpp"

using namespace pathsched;

int
main()
{
    bench::ExperimentRunner general_runner;

    pipeline::PipelineOptions fwd;
    fwd.pathParams.forwardPathsOnly = true;
    bench::ExperimentRunner forward_runner(fwd);

    std::vector<double> general, forward;
    const auto benchmarks = bench::allBenchmarks();
    for (const auto &name : benchmarks) {
        {
            const auto &m4 =
                general_runner.run(name, pipeline::SchedConfig::M4);
            const auto &p4 =
                general_runner.run(name, pipeline::SchedConfig::P4);
            general.push_back(double(p4.test.cycles) /
                              double(m4.test.cycles));
        }
        {
            const auto &m4 =
                forward_runner.run(name, pipeline::SchedConfig::M4);
            const auto &p4 =
                forward_runner.run(name, pipeline::SchedConfig::P4);
            forward.push_back(double(p4.test.cycles) /
                              double(m4.test.cycles));
        }
    }
    bench::printNormalizedTable(
        "Forward-path ablation: P4 cycles normalized vs M4, by path "
        "kind",
        benchmarks, {{"general", general}, {"forward", forward}});
    return 0;
}
