/**
 * @file
 * The code-motion-vs-duplication trade on the Figure-4 benchmark set:
 * Click-style global code motion (G4, CFG untouched) against the
 * paper's path-based superblocks (P4, duplication-heavy) under the
 * 32 KB I-cache, with BB as the common baseline.
 *
 * Expected shape: G4 never expands code, so its miss rate stays at the
 * BB baseline while P4 pays for its duplication on the large
 * footprints — but P4 wins cycles wherever compaction across the
 * duplicated blocks finds parallelism GCM's per-block list scheduling
 * cannot.  G4e (GCM before path enlargement) should land between.
 *
 * Writes BENCH_gcm.json: one row per (benchmark, config) with cycles,
 * miss rate, code bytes, plus the GCM hoist counters and a
 * "vsP4"/"vsBB" normalized-cycles metric per G-config row.
 */

#include <cstdio>

#include "common.hpp"
#include "pipeline/backend.hpp"

using namespace pathsched;

int
main()
{
    pipeline::PipelineOptions opts;
    opts.useICache = true;
    bench::ExperimentRunner runner(opts);
    bench::JsonReport report("gcm");

    const std::vector<pipeline::SchedConfig> configs = {
        pipeline::SchedConfig::BB, pipeline::SchedConfig::P4,
        pipeline::SchedConfig::G4, pipeline::SchedConfig::G4e};

    std::printf("Global code motion vs path-based duplication "
                "(32KB I-cache)\n\n");
    std::printf("%-8s %9s %9s %9s   %9s %9s %9s   %8s\n", "bench",
                "G4/BB", "G4/P4", "G4e/P4", "BB miss", "P4 miss",
                "G4 miss", "hoisted");

    const auto benchmarks = bench::allBenchmarks();
    for (const auto &name : benchmarks) {
        std::map<pipeline::SchedConfig, const pipeline::PipelineResult *>
            res;
        for (pipeline::SchedConfig c : configs)
            res[c] = &runner.run(name, c);
        const auto &bb = *res[pipeline::SchedConfig::BB];
        const auto &p4 = *res[pipeline::SchedConfig::P4];
        const auto &g4 = *res[pipeline::SchedConfig::G4];
        const auto &g4e = *res[pipeline::SchedConfig::G4e];

        auto rate = [](const pipeline::PipelineResult &r) {
            return r.test.icacheAccesses == 0
                       ? 0.0
                       : 100.0 * double(r.test.icacheMisses) /
                             double(r.test.icacheAccesses);
        };
        std::printf("%-8s %9.3f %9.3f %9.3f   %8.2f%% %8.2f%% %8.2f%%"
                    "   %8llu\n",
                    name.c_str(),
                    double(g4.test.cycles) / double(bb.test.cycles),
                    double(g4.test.cycles) / double(p4.test.cycles),
                    double(g4e.test.cycles) / double(p4.test.cycles),
                    rate(bb), rate(p4), rate(g4),
                    static_cast<unsigned long long>(g4.gcm.hoisted));

        for (pipeline::SchedConfig c : configs) {
            const pipeline::PipelineResult &r = *res[c];
            report.row(name, r);
            report.metric("degraded", double(r.degraded.size()));
            report.metric("vsBB", double(r.test.cycles) /
                                      double(bb.test.cycles));
            report.metric("vsP4", double(r.test.cycles) /
                                      double(p4.test.cycles));
            if (pipeline::backendFor(c).usesGcm) {
                report.metric("gcmCandidates",
                              double(r.gcm.candidates));
                report.metric("gcmHoisted", double(r.gcm.hoisted));
                report.metric("gcmLoopHoisted",
                              double(r.gcm.loopHoisted));
                report.metric("gcmLatencyHoisted",
                              double(r.gcm.latencyHoisted));
            }
        }
    }

    return report.write() ? 0 : 1;
}
