/**
 * @file
 * Aggregation-server robustness benchmark: a simulated noisy fleet
 * driven through the transport-free ServeCore, written to
 * BENCH_serve.json.
 *
 * The fleet misbehaves the way real profile shippers do:
 *
 *  - duplicate uploads (blind resends after reconnects),
 *  - reconnect storms (fresh connection + Hello per delta for some
 *    clients),
 *  - stale CFGs (a flipped fingerprint digit in the v2 header),
 *  - garbage payloads (not a profile at all),
 *  - torn frames (the byte stream is cut mid-frame; the socket-layer
 *    FrameDecoder must surface only intact frames and flag the tear),
 *  - one spammy client that exceeds its per-epoch token budget.
 *
 * Mid-stream the profile distribution shifts (train -> test input), so
 * the hot-path fingerprints move exactly once and the bench can report
 * the reschedule ratio: runs over attempts, where every unmoved epoch
 * is gated off and every unchanged procedure inside a run is a stage
 * cache hit.
 *
 * The run ends with a simulated kill -9: the core is destroyed with no
 * shutdown and a fresh one recovers from the WAL.  Recovery wall time
 * and bit-identity of the recovered aggregate are part of the report —
 * those are the numbers the durability design pays for.
 */

#include <sys/stat.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "interp/interpreter.hpp"
#include "profile/path_profile.hpp"
#include "profile/serialize.hpp"
#include "serve/server.hpp"
#include "serve/wal.hpp"
#include "serve/wire.hpp"
#include "support/logging.hpp"
#include "support/rng.hpp"
#include "support/vio.hpp"

using namespace pathsched;
using namespace pathsched::serve;

namespace {

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

std::string
pathProfileText(const workloads::Workload &w,
                const interp::ProgramInput &input)
{
    profile::PathProfiler pp(w.program, profile::PathProfileParams{});
    interp::Interpreter interp(w.program);
    interp.addListener(&pp);
    interp.run(input);
    return profile::toTextV2(pp, w.program);
}

/** Flip one fingerprint hex digit: a stale-CFG upload. */
std::string
staleVariant(std::string text)
{
    const size_t fp = text.find("fingerprint");
    ps_assert(fp != std::string::npos);
    const size_t digit = text.find_first_of("0123456789abcdef", fp + 12);
    ps_assert(digit != std::string::npos);
    text[digit] = text[digit] == '0' ? '1' : '0';
    return text;
}

/**
 * One client's view of the server: every message goes through a real
 * frame encode, an optional mid-frame tear, and a FrameDecoder — the
 * same trust boundary the socket layer enforces — before the payload
 * reaches the core.
 */
struct SimClient
{
    std::string id;
    uint64_t seq = 0;
    uint64_t conn = 0;
    bool reconnectStorm = false;

    std::string
    connKey() const
    {
        return id + "/conn-" + std::to_string(conn);
    }
};

struct FleetCounters
{
    uint64_t framesSent = 0;
    uint64_t tornFrames = 0;
    uint64_t admitted = 0;
    uint64_t duplicates = 0;
    uint64_t throttled = 0;
    uint64_t rejected = 0;
    uint64_t quarantined = 0;
    uint64_t errors = 0;
    uint64_t unavailable = 0;
    uint64_t reconnects = 0;
};

/** Deliver one payload through frame+decoder to the core; a torn
 *  delivery never reaches the core and forces a reconnect+resend. */
AckCode
deliver(ServeCore &core, SimClient &c, const std::string &payload,
        bool tear, FleetCounters &fc)
{
    for (;;) {
        std::string stream;
        appendFrame(stream, encodeHello(c.id));
        appendFrame(stream, payload);
        if (tear) {
            // Cut mid-frame: the decoder must hold back the partial
            // frame; the client times out and reconnects.
            stream.resize(stream.size() - 1 - stream.size() % 7);
            ++fc.tornFrames;
        }
        FrameDecoder dec;
        dec.feed(stream.data(), stream.size());

        AckCode last = AckCode::Error;
        bool sawAck = false;
        std::string frame;
        bool drop = false;
        while (dec.next(frame) == FrameDecoder::Result::Frame) {
            ++fc.framesSent;
            const auto resp = core.handleFrame(c.connKey(), frame, drop);
            for (const auto &r : resp) {
                Message m;
                if (decodeMessage(r, m).ok() && m.type == MsgType::Ack) {
                    last = m.ack;
                    sawAck = true;
                }
            }
        }
        if (sawAck && !tear)
            return last;
        // Torn (or unacked) delivery: reconnect and blindly resend the
        // complete stream — the seq cursor absorbs any duplicate.
        core.dropConnection(c.connKey());
        ++c.conn;
        ++fc.reconnects;
        tear = false;
    }
}

void
count(AckCode code, FleetCounters &fc)
{
    switch (code) {
    case AckCode::Accepted: ++fc.admitted; break;
    case AckCode::Duplicate: ++fc.duplicates; break;
    case AckCode::Throttled: ++fc.throttled; break;
    case AckCode::Quarantined: ++fc.quarantined; break;
    case AckCode::Rejected: ++fc.rejected; break;
    case AckCode::Error: ++fc.errors; break;
    case AckCode::Unavailable: ++fc.unavailable; break;
    }
}

/** Read a whole file (binary); empty on failure. */
std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::string out((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    return out;
}

uint64_t
fileSize(const std::string &path)
{
    struct stat sb;
    if (::stat(path.c_str(), &sb) != 0)
        panic("stat %s failed", path.c_str());
    return uint64_t(sb.st_size);
}

} // namespace

int
main()
{
    const auto w = workloads::makeByName("wc");
    const std::string trainText = pathProfileText(w, w.train);
    const std::string testText = pathProfileText(w, w.test);
    const std::string staleText = staleVariant(trainText);

    const std::string stateDir =
        "/tmp/pathsched_bench_serve_" + std::to_string(::getpid());

    ServeOptions opts;
    opts.aggregate.maxKeysPerBucket = 4096; // bounded-memory cap
    opts.admission.tokensPerEpoch = 6;      // the spammer will hit this
    opts.admission.maxTokens = 8;
    opts.snapshotEvery = 64;

    auto core = std::make_unique<ServeCore>(w, opts, stateDir);
    if (Status st = core->init(); !st.ok())
        panic("serve init failed: %s", st.toString().c_str());

    // A fleet of 6: four honest shards, one stale/garbage shipper,
    // one spammer in a reconnect storm.
    std::vector<SimClient> fleet;
    for (int i = 0; i < 4; ++i)
        fleet.push_back({"shard-" + std::to_string(i)});
    fleet.push_back({"stale-box"});
    fleet.push_back({"spammer"});
    fleet.back().reconnectStorm = true;

    Rng rng(0x5eedba5eULL);
    FleetCounters fc;
    const int kEpochs = 10, kDeltasPerEpoch = 4;

    const auto t0 = Clock::now();
    for (int epoch = 0; epoch < kEpochs; ++epoch) {
        // The traffic distribution shifts halfway: fingerprints move
        // exactly once, so exactly two reschedules should *run*.
        const std::string &honest =
            epoch < kEpochs / 2 ? trainText : testText;
        for (int d = 0; d < kDeltasPerEpoch; ++d) {
            for (auto &c : fleet) {
                const bool spam = c.id == "spammer";
                const bool badbox = c.id == "stale-box";
                const std::string &text =
                    badbox ? (rng.chance(0.5) ? staleText
                                              : std::string("garbage"))
                            : honest;
                // Spammer sends a burst of 3 per slot in a reconnect
                // storm; everyone occasionally resends the last seq.
                const int sends = spam ? 3 : 1;
                for (int s = 0; s < sends; ++s) {
                    const bool dup = c.seq > 0 && rng.chance(0.15);
                    const uint64_t seq = dup ? c.seq : ++c.seq;
                    if (c.reconnectStorm) {
                        core->dropConnection(c.connKey());
                        ++c.conn;
                        ++fc.reconnects;
                    }
                    const AckCode code =
                        deliver(*core, c, encodeDelta(seq, 1, text),
                                rng.chance(0.1), fc);
                    count(code, fc);
                    // A throttled honest seq would be retried next
                    // epoch by a real client; the sim just moves on.
                    if (code == AckCode::Throttled && !dup)
                        --c.seq;
                }
            }
        }
        if (Status st = core->tick(); !st.ok())
            panic("tick failed: %s", st.toString().c_str());
    }
    const double streamMs = msSince(t0);

    const auto &reg = core->stats();
    const uint64_t attempts = reg.counter("serve.resched.attempts");
    const uint64_t runs = reg.counter("serve.resched.runs");
    const uint64_t skipped = reg.counter("serve.resched.skippedUnmoved");
    const uint64_t cacheHits = reg.counter("serve.resched.cacheHits");
    const uint64_t cacheMisses =
        reg.counter("serve.resched.cacheMisses");
    const uint64_t liveKeys = core->aggregate().liveKeys();
    const uint64_t droppedKeys = core->aggregate().droppedKeys();

    std::printf("fleet: %llu frames, %llu admitted, %llu dup, "
                "%llu throttled, %llu rejected, %llu quarantined, "
                "%llu torn, %llu reconnects (%.0f ms)\n",
                (unsigned long long)fc.framesSent,
                (unsigned long long)fc.admitted,
                (unsigned long long)fc.duplicates,
                (unsigned long long)fc.throttled,
                (unsigned long long)fc.rejected,
                (unsigned long long)fc.quarantined,
                (unsigned long long)fc.tornFrames,
                (unsigned long long)fc.reconnects, streamMs);
    std::printf("resched: %llu attempts, %llu runs, %llu gated off, "
                "cache %llu hits / %llu misses\n",
                (unsigned long long)attempts, (unsigned long long)runs,
                (unsigned long long)skipped,
                (unsigned long long)cacheHits,
                (unsigned long long)cacheMisses);
    std::printf("memory: %llu live keys (cap %llu/bucket), "
                "%llu dropped\n",
                (unsigned long long)liveKeys,
                (unsigned long long)opts.aggregate.maxKeysPerBucket,
                (unsigned long long)droppedKeys);

    // Only moved-fingerprint epochs may actually run the scheduler.
    if (runs + skipped + reg.counter("serve.resched.skippedEmpty")
        != attempts)
        panic("reschedule accounting leak");
    if (runs > 3)
        panic("fingerprint gate leaked: %llu runs for one "
              "distribution shift",
              (unsigned long long)runs);

    // --- warm reschedule: aggregate unchanged -> pure cache serve. ---
    // First a forced run to populate the cache at the current window,
    // then the measured rerun, which must be served hit-for-hit.
    if (const auto seed2 = core->attemptReschedule(true);
        !seed2.status.ok())
        panic("cache seed run failed");
    const RescheduleOutcome warm = core->attemptReschedule(true);
    if (!warm.status.ok() || !warm.ran)
        panic("warm reschedule did not run");
    std::printf("warm resched: %llu cache hits, %llu misses\n",
                (unsigned long long)warm.cacheHits,
                (unsigned long long)warm.cacheMisses);
    if (warm.cacheMisses != 0)
        panic("unchanged aggregate missed the stage cache");

    // --- hostile key flood: the per-bucket cap bounds memory. ---
    AggregateOptions floodOpts;
    floodOpts.maxKeysPerBucket = 1000;
    Aggregate flood(floodOpts);
    AdmittedDelta fd;
    fd.clientId = "flood";
    fd.seq = 1;
    for (uint32_t k = 0; k < 10000; ++k)
        fd.edges.push_back({k >> 8, k & 0xff, (k & 0xff) + 1, 1});
    fd.normalize();
    flood.apply(fd);
    std::printf("key flood: %llu live keys (cap %llu), %llu dropped\n",
                (unsigned long long)flood.liveKeys(),
                (unsigned long long)floodOpts.maxKeysPerBucket,
                (unsigned long long)flood.droppedKeys());
    if (flood.liveKeys() > floodOpts.maxKeysPerBucket)
        panic("key cap leaked");

    // --- kill -9: destroy with no shutdown, recover, compare. ---
    const std::string preCrash = core->aggregate().serialize();
    const uint64_t preHash = core->aggregate().contentHash();
    core.reset();

    const auto r0 = Clock::now();
    auto reborn = std::make_unique<ServeCore>(w, opts, stateDir);
    if (Status st = reborn->init(); !st.ok())
        panic("recovery failed: %s", st.toString().c_str());
    const double recoveryMs = msSince(r0);

    const bool identical =
        reborn->aggregate().serialize() == preCrash &&
        reborn->aggregate().contentHash() == preHash;
    std::printf("recovery: %.1f ms, %llu records + %llu epochs "
                "replayed, bit-identical: %s\n",
                recoveryMs,
                (unsigned long long)reborn->recovery().recordsReplayed,
                (unsigned long long)reborn->recovery().epochRecords,
                identical ? "yes" : "NO");
    if (!identical)
        panic("recovered aggregate differs from pre-crash state");

    // --- hostile disk: WAL fsync EIO -> degrade, NACK, recover. ------
    // One injected fsync failure on the first append.  The server must
    // NACK with Unavailable (not ack and lose), serve reads, recover on
    // the next tick once the fault budget is exhausted, and end up
    // bit-identical to a control server that never saw the fault.
    const std::string hdDir = stateDir + "_hd";
    const std::string ctlDir = stateDir + "_ctl";
    Vio hostile;
    {
        std::string err;
        if (!hostile.parseFaults("path=wal,op=fsync,kind=eio,count=1",
                                 err))
            panic("bad fault spec: %s", err.c_str());
    }
    ServeOptions hdOpts = opts;
    hdOpts.vio = &hostile;
    ServeCore hd(w, hdOpts, hdDir);
    ServeCore ctl(w, opts, ctlDir);
    if (Status st = hd.init(); !st.ok())
        panic("hostile-disk init failed: %s", st.toString().c_str());
    if (Status st = ctl.init(); !st.ok())
        panic("control init failed: %s", st.toString().c_str());

    SimClient hc{"hd-client"};
    SimClient cc{"hd-client"}; // same id: identical WAL records
    FleetCounters hfc;
    const std::string hdDelta = encodeDelta(1, 1, trainText);
    if (deliver(hd, hc, hdDelta, false, hfc) != AckCode::Unavailable)
        panic("hostile disk: first delta was not NACK'd Unavailable");
    ++hfc.unavailable;
    if (hd.health() != Health::Degraded)
        panic("hostile disk: server not degraded after WAL failure");
    if (deliver(hd, hc, hdDelta, false, hfc) != AckCode::Unavailable)
        panic("hostile disk: degraded server admitted a delta");
    ++hfc.unavailable;
    // Tick: the reopen retry fires, the fault budget is spent, the
    // server snapshots back to healthy and the epoch advances.
    if (Status st = hd.tick(); !st.ok())
        panic("hostile disk: recovery tick failed: %s",
              st.toString().c_str());
    if (hd.health() != Health::Healthy)
        panic("hostile disk: server did not recover");
    if (deliver(hd, hc, hdDelta, false, hfc) != AckCode::Accepted)
        panic("hostile disk: recovered server refused the resend");
    // Control timeline: the NACK'd attempts never happened, so it is
    // just tick + the same admitted delta.
    if (Status st = ctl.tick(); !st.ok())
        panic("control tick failed: %s", st.toString().c_str());
    FleetCounters cfc;
    if (deliver(ctl, cc, hdDelta, false, cfc) != AckCode::Accepted)
        panic("control server refused the delta");
    const bool hdIdentical =
        hd.aggregate().serialize() == ctl.aggregate().serialize() &&
        hd.aggregate().contentHash() == ctl.aggregate().contentHash();
    const uint64_t hdReopens =
        hd.stats().counter("serve.health.reopenAttempts");
    const uint64_t hdRecoveries =
        hd.stats().counter("serve.health.recoveries");
    std::printf("hostile disk: %llu NACKs, %llu reopen attempt(s), "
                "%llu recovery(ies), bit-identical to control: %s\n",
                (unsigned long long)hfc.unavailable,
                (unsigned long long)hdReopens,
                (unsigned long long)hdRecoveries,
                hdIdentical ? "yes" : "NO");
    if (!hdIdentical)
        panic("recovered-from-fault aggregate differs from control");

    // --- torn-tail sweep: truncate at every byte of the last record. -
    // Recovery must land on exactly the pre-record aggregate at every
    // truncation offset: the torn tail is discarded, never applied in
    // part, and a clean cut at the record boundary is not flagged torn.
    const std::string sweepSrc = stateDir + "_sweep_src";
    const std::string sweepDir = stateDir + "_sweep";
    uint64_t sizeBefore = 0, sizeAfter = 0;
    std::string expectedBytes;
    {
        Wal wal(sweepSrc);
        Aggregate agg;
        RecoveryInfo ri;
        if (Status st = wal.open(agg, ri); !st.ok())
            panic("sweep wal open failed: %s", st.toString().c_str());
        Aggregate expected;
        AdmittedDelta d;
        d.clientId = "sweeper";
        const uint64_t kRecords = 4;
        for (uint64_t s = 1; s <= kRecords; ++s) {
            d.seq = s;
            d.edges.clear();
            for (uint32_t k = 0; k < 8; ++k)
                d.edges.push_back(
                    {uint32_t(s % 3), k, k + 1, s * 7 + k});
            d.normalize();
            if (s == kRecords) {
                expectedBytes = expected.serialize();
                sizeBefore = fileSize(sweepSrc + "/wal.1.bin");
            } else {
                expected.apply(d);
            }
            if (Status st = wal.appendAdmitted(d); !st.ok())
                panic("sweep append failed: %s",
                      st.toString().c_str());
        }
        sizeAfter = fileSize(sweepSrc + "/wal.1.bin");
    }
    const std::string fullWal = slurp(sweepSrc + "/wal.1.bin");
    if (fullWal.size() != sizeAfter)
        panic("sweep source wal changed size");
    if (::mkdir(sweepDir.c_str(), 0755) != 0 && errno != EEXIST)
        panic("cannot create %s", sweepDir.c_str());
    uint64_t sweepViolations = 0;
    const auto s0 = Clock::now();
    for (uint64_t off = sizeBefore; off < sizeAfter; ++off) {
        {
            std::ofstream out(sweepDir + "/wal.1.bin",
                              std::ios::binary | std::ios::trunc);
            out.write(fullWal.data(), std::streamsize(off));
        }
        Wal wal(sweepDir);
        Aggregate agg;
        RecoveryInfo ri;
        if (!wal.open(agg, ri).ok()) {
            ++sweepViolations;
            continue;
        }
        if (agg.serialize() != expectedBytes)
            ++sweepViolations;
        if (ri.tornSegments != (off == sizeBefore ? 0u : 1u))
            ++sweepViolations;
    }
    const double sweepMs = msSince(s0);
    std::printf("torn-tail sweep: %llu offsets, %llu violation(s) "
                "(%.0f ms)\n",
                (unsigned long long)(sizeAfter - sizeBefore),
                (unsigned long long)sweepViolations, sweepMs);
    if (sweepViolations != 0)
        panic("torn-tail sweep violated recovery invariants");

    bench::JsonReport report("serve");
    report.row("fleet", "noisy");
    report.metric("frames", double(fc.framesSent));
    report.metric("admitted", double(fc.admitted));
    report.metric("duplicates", double(fc.duplicates));
    report.metric("throttled", double(fc.throttled));
    report.metric("rejected", double(fc.rejected));
    report.metric("quarantined", double(fc.quarantined));
    report.metric("tornFrames", double(fc.tornFrames));
    report.metric("reconnects", double(fc.reconnects));
    report.metric("streamMs", streamMs);
    report.row("resched", "gated");
    report.metric("attempts", double(attempts));
    report.metric("runs", double(runs));
    report.metric("skippedUnmoved", double(skipped));
    report.metric("ratio",
                  attempts == 0 ? 0.0
                                : double(runs) / double(attempts));
    report.metric("cacheHits", double(cacheHits));
    report.metric("cacheMisses", double(cacheMisses));
    report.metric("cacheHitRate",
                  cacheHits + cacheMisses == 0
                      ? 0.0
                      : double(cacheHits) /
                            double(cacheHits + cacheMisses));
    report.row("resched-warm", "unchanged-aggregate");
    report.metric("cacheHits", double(warm.cacheHits));
    report.metric("cacheMisses", double(warm.cacheMisses));
    report.row("memory", "bounded");
    report.metric("liveKeys", double(liveKeys));
    report.metric("keyCap", double(opts.aggregate.maxKeysPerBucket));
    report.metric("droppedKeys", double(droppedKeys));
    report.row("memory", "key-flood");
    report.metric("liveKeys", double(flood.liveKeys()));
    report.metric("keyCap", double(floodOpts.maxKeysPerBucket));
    report.metric("droppedKeys", double(flood.droppedKeys()));
    report.row("recovery", "kill9");
    report.metric("ms", recoveryMs);
    report.metric("records",
                  double(reborn->recovery().recordsReplayed));
    report.metric("bitIdentical", identical ? 1.0 : 0.0);
    report.row("hostile-disk", "wal-fsync-eio");
    report.metric("nacks", double(hfc.unavailable));
    report.metric("reopenAttempts", double(hdReopens));
    report.metric("recoveries", double(hdRecoveries));
    report.metric("bitIdentical", hdIdentical ? 1.0 : 0.0);
    report.row("recovery", "torn-tail-sweep");
    report.metric("offsets", double(sizeAfter - sizeBefore));
    report.metric("violations", double(sweepViolations));
    report.metric("ms", sweepMs);

    if (!report.write())
        std::fprintf(stderr,
                     "warning: could not write BENCH_serve.json\n");
    return 0;
}
