/**
 * @file
 * Benchmarks the profilers themselves (§3.1): the general path
 * profiler's lazy successor-memoisation scheme should cost O(1)
 * amortized per executed edge when the number of distinct paths is
 * much smaller than the number of dynamic edges — i.e. close to the
 * edge profiler's cost and *independent of run length*.
 *
 * Uses google-benchmark.  Also prints the distinct-path counts that
 * justify the bound's precondition.
 */

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "interp/interpreter.hpp"
#include "profile/edge_profile.hpp"
#include "profile/path_profile.hpp"
#include "workloads/workloads.hpp"

using namespace pathsched;

namespace {

/** Scale a workload's run length through main-arg / budget inputs. */
interp::ProgramInput
scaledInput(const workloads::Workload &w, int64_t scale_divisor)
{
    interp::ProgramInput in = w.test;
    if (!in.mainArgs.empty()) {
        in.mainArgs[0] /= scale_divisor;
    } else if (!in.memImage.empty()) {
        in.memImage[0] /= scale_divisor; // word 0 is the size knob
    }
    return in;
}

void
BM_InterpOnly(benchmark::State &state, const char *name)
{
    const auto w = workloads::makeByName(name);
    const auto in = scaledInput(w, state.range(0));
    for (auto _ : state) {
        interp::Interpreter interp(w.program, {});
        auto r = interp.run(in);
        state.SetItemsProcessed(state.items_processed() +
                                int64_t(r.dynInstrs));
        benchmark::DoNotOptimize(r.cycles);
    }
}

void
BM_EdgeProfile(benchmark::State &state, const char *name)
{
    const auto w = workloads::makeByName(name);
    const auto in = scaledInput(w, state.range(0));
    for (auto _ : state) {
        profile::EdgeProfiler ep(w.program);
        interp::Interpreter interp(w.program, {});
        interp.addListener(&ep);
        auto r = interp.run(in);
        state.SetItemsProcessed(state.items_processed() +
                                int64_t(r.dynInstrs));
        benchmark::DoNotOptimize(r.cycles);
    }
}

void
BM_PathProfile(benchmark::State &state, const char *name)
{
    const auto w = workloads::makeByName(name);
    const auto in = scaledInput(w, state.range(0));
    size_t paths = 0;
    for (auto _ : state) {
        profile::PathProfiler pp(w.program, {});
        interp::Interpreter interp(w.program, {});
        interp.addListener(&pp);
        auto r = interp.run(in);
        pp.finalize();
        paths = pp.numPaths();
        state.SetItemsProcessed(state.items_processed() +
                                int64_t(r.dynInstrs));
        benchmark::DoNotOptimize(r.cycles);
    }
    state.counters["distinct_paths"] =
        benchmark::Counter(double(paths));
}

} // namespace

int
main(int argc, char **argv)
{
    // items_per_second ~ constant across run lengths (range = input
    // divisor) demonstrates the O(1)-per-edge amortized bound.
    // Name storage must outlive registration (RegisterBenchmark keeps
    // a pointer on older google-benchmark versions).
    static std::vector<std::string> names;
    names.reserve(64);
    auto reg = [](const std::string &label, auto fn, int64_t div) {
        names.push_back(label);
        benchmark::RegisterBenchmark(names.back().c_str(), fn)->Arg(div);
    };
    for (const char *name : {"wc", "com", "perl"}) {
        for (int64_t div : {8, 4, 2, 1}) {
            const std::string suffix =
                std::string(name) + "/div" + std::to_string(div);
            reg("interp_only/" + suffix,
                [name](benchmark::State &s) { BM_InterpOnly(s, name); },
                div);
            reg("edge_profile/" + suffix,
                [name](benchmark::State &s) { BM_EdgeProfile(s, name); },
                div);
            reg("path_profile/" + suffix,
                [name](benchmark::State &s) { BM_PathProfile(s, name); },
                div);
        }
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
