/**
 * @file
 * Regenerates Figure 6: is it more important to unroll aggressively or
 * to exploit the actual important paths?  "P4e" (paths, unroll bound
 * 4) and "M16" (edge profiles, unroll factor 16) with the 32 KB
 * I-cache, both normalized against M4.
 *
 * Expected shape: except for a few benchmarks where plain unrolling is
 * what matters (the eqntott analogue), paths at unroll 4 beat edges at
 * unroll 16.
 */

#include <cstdio>

#include "common.hpp"

using namespace pathsched;

int
main()
{
    pipeline::PipelineOptions opts;
    opts.useICache = true;
    bench::ExperimentRunner runner(opts);

    std::vector<double> p4e, m16;
    const auto benchmarks = bench::allBenchmarks();
    for (const auto &name : benchmarks) {
        const auto &m4 = runner.run(name, pipeline::SchedConfig::M4);
        const auto &r4e = runner.run(name, pipeline::SchedConfig::P4e);
        const auto &r16 = runner.run(name, pipeline::SchedConfig::M16);
        p4e.push_back(double(r4e.test.cycles) / double(m4.test.cycles));
        m16.push_back(double(r16.test.cycles) / double(m4.test.cycles));
    }
    bench::printNormalizedTable(
        "Figure 6: normalized cycle counts, 32KB I-cache (vs M4)",
        benchmarks, {{"P4e", p4e}, {"M16", m16}});
    return 0;
}
